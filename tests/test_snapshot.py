"""Heap snapshot subsystem: format, dominators, retained sizes, diff, policy.

The analysis layer is validated against a brute-force oracle: the retained
size of ``o`` is the live bytes lost when the traversal refuses to enter
``o`` — computed straight off the snapshot graph, independently of the
dominator machinery under test.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.baselines.cork import TypeGrowthProfiler
from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine
from repro.snapshot import (
    SUPER_ROOT,
    SnapshotFormatError,
    SnapshotPolicy,
    build_dominator_tree,
    diff_snapshots,
    load_snapshot,
    read_index,
    read_object,
    retained_sizes,
    top_retained,
    why_alive,
)
from repro.telemetry.census import ClassCensus
from repro.workloads.swapleak import SwapLeakConfig, run_swapleak
from tests.conftest import ALL_COLLECTORS

# -- graph scaffolding ------------------------------------------------------------------

#: Crafted graphs: {node: (children...)} plus the root node names.
DIAMOND = ({"A": ("B", "C"), "B": ("D",), "C": ("D",), "D": ()}, ["A"])
CYCLE = ({"X": ("Y",), "Y": ("Z",), "Z": ("X",)}, ["X"])
SHARED = ({"A": ("S",), "B": ("S",), "S": ()}, ["A", "B"])
SELF_LOOP = ({"L": ("L",)}, ["L"])
GRAPHS = {"diamond": DIAMOND, "cycle": CYCLE, "shared": SHARED, "self_loop": SELF_LOOP}


def build_graph(vm, edges: dict, roots: list[str]) -> dict[str, int]:
    """Materialize a named graph on the heap, rooted via statics."""
    cls = vm.classes.maybe("GraphNode") or vm.define_class(
        "GraphNode",
        [("a", FieldKind.REF), ("b", FieldKind.REF), ("c", FieldKind.REF)],
    )
    slots = ["a", "b", "c"]
    with vm.scope("build_graph"):
        handles = {name: vm.new(cls) for name in edges}
        for name, children in edges.items():
            assert len(children) <= len(slots)
            for slot, child in zip(slots, children):
                handles[name][slot] = handles[child]
        for name in roots:
            vm.statics.set_ref(f"root-{name}", handles[name].address)
        return {name: handle.address for name, handle in handles.items()}


def snapshot_graph(tmp_path, edges: dict, roots: list[str]):
    vm = VirtualMachine(heap_bytes=1 << 20)
    addresses = build_graph(vm, edges, roots)
    path = str(tmp_path / "graph.jsonl")
    vm.capture_snapshot(path)
    return load_snapshot(path), addresses


def reachable_bytes(snapshot, skip: int | None = None) -> int:
    """Oracle traversal: live bytes when refusing to enter ``skip``."""
    seen: set[int] = set()
    stack = [a for a in snapshot.root_addresses() if a != skip]
    total = 0
    while stack:
        addr = stack.pop()
        if addr in seen:
            continue
        seen.add(addr)
        record = snapshot.objects[addr]
        total += record.size
        for edge in record.edges:
            if edge != skip and edge not in seen:
                stack.append(edge)
    return total


def oracle_retained(snapshot, addr: int) -> int:
    return reachable_bytes(snapshot) - reachable_bytes(snapshot, skip=addr)


# -- dominators and retained sizes ------------------------------------------------------


class TestDominatorsRetained:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_retained_matches_brute_force_oracle(self, tmp_path, name):
        edges, roots = GRAPHS[name]
        snapshot, addresses = snapshot_graph(tmp_path, edges, roots)
        retained = retained_sizes(snapshot)
        for node, addr in addresses.items():
            assert retained[addr] == oracle_retained(snapshot, addr), node
        # The synthetic super-root retains the whole reachable heap.
        assert retained[SUPER_ROOT] == reachable_bytes(snapshot)

    def test_diamond_dominator_chain(self, tmp_path):
        edges, roots = DIAMOND
        snapshot, a = snapshot_graph(tmp_path, edges, roots)
        tree = build_dominator_tree(snapshot)
        # D is reached via B and via C, so its immediate dominator is A.
        assert tree.idom[a["D"]] == a["A"]
        assert tree.chain(a["D"]) == [a["A"], a["D"]]

    def test_cycle_collapses_onto_entry(self, tmp_path):
        edges, roots = CYCLE
        snapshot, a = snapshot_graph(tmp_path, edges, roots)
        tree = build_dominator_tree(snapshot)
        assert tree.chain(a["Z"]) == [a["X"], a["Y"], a["Z"]]
        retained = retained_sizes(snapshot, tree)
        # The entry node holds the whole cycle.
        assert retained[a["X"]] == reachable_bytes(snapshot)

    def test_shared_subtree_is_retained_by_neither_root(self, tmp_path):
        edges, roots = SHARED
        snapshot, a = snapshot_graph(tmp_path, edges, roots)
        tree = build_dominator_tree(snapshot)
        # S is reachable from both roots: only the super-root dominates it.
        assert tree.idom[a["S"]] == SUPER_ROOT
        retained = retained_sizes(snapshot, tree)
        assert retained[a["A"]] == snapshot.objects[a["A"]].size

    def test_why_alive_renders_chain(self, tmp_path):
        edges, roots = DIAMOND
        snapshot, a = snapshot_graph(tmp_path, edges, roots)
        answer = why_alive(snapshot, a["D"])
        text = answer.render()
        assert "GraphNode" in text
        assert "Retained size:" in text
        assert "(roots)" in text
        assert answer.retained_bytes == oracle_retained(snapshot, a["D"])

    def test_why_alive_unreachable_address_raises(self, tmp_path):
        edges, roots = DIAMOND
        snapshot, _ = snapshot_graph(tmp_path, edges, roots)
        with pytest.raises(KeyError):
            why_alive(snapshot, 0xDEAD)

    def test_top_retained_is_sorted_and_complete(self, tmp_path):
        edges, roots = DIAMOND
        snapshot, _ = snapshot_graph(tmp_path, edges, roots)
        rows = top_retained(snapshot, limit=100)
        assert len(rows) == len(snapshot)
        sizes = [nbytes for _a, _t, nbytes in rows]
        assert sizes == sorted(sizes, reverse=True)


# -- round trip and capture equivalence -------------------------------------------------


class TestRoundTrip:
    def test_capture_load_matches_live_heap(self, tmp_path):
        """Snapshot contents == a direct walk of the VM's live heap."""
        vm = VirtualMachine(heap_bytes=1 << 20)
        build_graph(vm, *DIAMOND)
        path = str(tmp_path / "rt.jsonl")
        vm.capture_snapshot(path)
        snapshot = load_snapshot(path)

        from repro.heap.layout import NULL

        expected_objects: set[int] = set()
        expected_edges: dict[tuple[int, int], int] = {}
        stack = [addr for _d, addr in vm.root_entries() if addr != NULL]
        while stack:
            addr = stack.pop()
            if addr in expected_objects:
                continue
            expected_objects.add(addr)
            obj = vm.heap.get(addr)
            for child in obj.reference_slots():
                if child == NULL:
                    continue
                key = (addr, child)
                expected_edges[key] = expected_edges.get(key, 0) + 1
                stack.append(child)
        assert set(snapshot.objects) == expected_objects
        assert snapshot.edge_multiset() == expected_edges
        for addr in expected_objects:
            obj = vm.heap.get(addr)
            record = snapshot.objects[addr]
            assert record.type_name == obj.cls.name
            assert record.size == obj.size_bytes
            assert record.alloc_seq == obj.alloc_seq

    @pytest.mark.parametrize("collector", ALL_COLLECTORS)
    def test_piggyback_matches_standalone(self, tmp_path, collector):
        """The in-pause capture equals a standalone pre-GC walk.

        Pre-GC because the piggybacked rows are frozen at mark time: for
        the copying collectors they carry from-space addresses, i.e. the
        addresses the heap had *before* the collection.
        """
        vm = VirtualMachine(heap_bytes=4 << 20, collector=collector)
        build_graph(vm, *DIAMOND)
        policy = SnapshotPolicy(str(tmp_path / "pig"), every_n_gcs=1).attach(vm)
        standalone = str(tmp_path / "standalone.jsonl")
        vm.capture_snapshot(standalone)
        vm.gc("piggyback capture")
        assert len(policy.captured) == 1
        piggy = load_snapshot(policy.captured[0])
        stand = load_snapshot(standalone)
        assert set(piggy.objects) == set(stand.objects)
        assert piggy.edge_multiset() == stand.edge_multiset()
        assert piggy.type_summary() == stand.type_summary()
        assert piggy.identities() == stand.identities()
        assert piggy.meta["trigger"] == "interval"
        assert piggy.meta["collector"] == collector

    @pytest.mark.parametrize("collector", ALL_COLLECTORS)
    def test_capture_does_not_perturb_the_collector(self, tmp_path, collector):
        """Work counters are identical with and without a snapshot policy."""

        def leg(policy_dir):
            vm = VirtualMachine(heap_bytes=256 << 10, collector=collector)
            if policy_dir is not None:
                SnapshotPolicy(policy_dir, every_n_gcs=1).attach(vm)
            run_swapleak(
                vm,
                SwapLeakConfig(swaps=48, gc_every_swaps=8, assert_dead_swapped=False),
            )
            return vm.stats

        plain = leg(None)
        captured = leg(str(tmp_path / "cap"))
        for counter in (
            "collections",
            "objects_traced",
            "edges_traced",
            "path_entries_tagged",
            "objects_freed",
            "bytes_freed",
        ):
            assert getattr(plain, counter) == getattr(captured, counter), counter

    def test_uninstalled_vm_has_no_snapshot_hooks(self):
        vm = VirtualMachine(heap_bytes=1 << 20)
        assert vm.snapshot_policy is None
        assert vm.collector.snapshot_policy is None
        vm.gc()
        assert vm.collector._snapshot_pending is None


# -- the file format --------------------------------------------------------------------


class TestFormat:
    def _capture(self, tmp_path):
        vm = VirtualMachine(heap_bytes=1 << 20)
        addresses = build_graph(vm, *DIAMOND)
        path = str(tmp_path / "fmt.jsonl")
        vm.capture_snapshot(path)
        return path, addresses

    def test_schema_drift_is_rejected(self, tmp_path):
        path, _ = self._capture(tmp_path)
        lines = open(path).read().splitlines()
        header = json.loads(lines[0])
        header["schema"] = "repro-heap-snapshot/999"
        drifted = str(tmp_path / "drifted.jsonl")
        with open(drifted, "w") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.write("\n".join(lines[1:]) + "\n")
        with pytest.raises(SnapshotFormatError, match="unsupported snapshot schema"):
            load_snapshot(drifted)

    def test_missing_header_is_rejected(self, tmp_path):
        path, _ = self._capture(tmp_path)
        headerless = str(tmp_path / "headerless.jsonl")
        with open(headerless, "w") as handle:
            handle.write("\n".join(open(path).read().splitlines()[1:]) + "\n")
        with pytest.raises(SnapshotFormatError, match="missing snapshot header"):
            load_snapshot(headerless)

    def test_unknown_line_kind_is_rejected(self, tmp_path):
        path, _ = self._capture(tmp_path)
        with open(path, "a") as handle:
            handle.write('{"kind": "mystery"}\n')
        with pytest.raises(SnapshotFormatError, match="unknown line kind"):
            load_snapshot(path)

    def test_index_point_lookup(self, tmp_path):
        path, addresses = self._capture(tmp_path)
        index = read_index(path)
        snapshot = load_snapshot(path)
        assert index["objects"] == len(snapshot)
        for addr in addresses.values():
            record = read_object(path, addr, index=index)
            assert record.addr == addr
            assert record.edges == snapshot.objects[addr].edges
        with pytest.raises(SnapshotFormatError, match="no object at"):
            read_object(path, 0xDEAD, index=index)

    def test_summary_matches_body(self, tmp_path):
        path, _ = self._capture(tmp_path)
        snapshot = load_snapshot(path)
        assert snapshot.summary["objects"] == len(snapshot)
        assert snapshot.summary["total_bytes"] == snapshot.total_bytes
        assert snapshot.summary["types"] == {
            name: [count, nbytes]
            for name, (count, nbytes) in snapshot.type_summary().items()
        }


# -- diffing and leak triage ------------------------------------------------------------


def _bracket_swapleak(tmp_path, static_rep: bool):
    """Run swapleak with per-GC captures; returns (vm, policy)."""
    vm = VirtualMachine(heap_bytes=4 << 20)
    policy = SnapshotPolicy(str(tmp_path / "leak"), every_n_gcs=1).attach(vm)
    run_swapleak(
        vm,
        SwapLeakConfig(
            swaps=64,
            gc_every_swaps=8,
            static_rep=static_rep,
            assert_dead_swapped=False,
        ),
    )
    assert len(policy.captured) >= 2
    return vm, policy


class TestDiff:
    def test_leaky_variant_ranks_sobject_first(self, tmp_path):
        _vm, policy = _bracket_swapleak(tmp_path, static_rep=False)
        first = load_snapshot(policy.captured[0])
        last = load_snapshot(policy.captured[-1])
        diff = diff_snapshots(first, last)
        ranked = diff.ranked()
        assert ranked, "the leaky variant must produce growth candidates"
        assert ranked[0].type_name == "SObject"
        assert ranked[0].bytes_delta > 0
        assert ranked[0].survivors > 0
        assert "SObject" in diff.render()

    def test_repaired_variant_has_no_sobject_growth(self, tmp_path):
        _vm, policy = _bracket_swapleak(tmp_path, static_rep=True)
        first = load_snapshot(policy.captured[0])
        last = load_snapshot(policy.captured[-1])
        diff = diff_snapshots(first, last)
        assert all(c.type_name != "SObject" for c in diff.ranked())

    def test_diff_cites_cork_ranking(self, tmp_path):
        vm = VirtualMachine(heap_bytes=4 << 20)
        profiler = TypeGrowthProfiler(vm)
        policy = SnapshotPolicy(str(tmp_path / "cork"), every_n_gcs=1).attach(vm)
        run_swapleak(
            vm,
            SwapLeakConfig(swaps=64, gc_every_swaps=8, assert_dead_swapped=False),
        )
        slopes = profiler.slopes()
        assert slopes["SObject"] > 0
        diff = diff_snapshots(
            load_snapshot(policy.captured[0]),
            load_snapshot(policy.captured[-1]),
            cork_slopes=slopes,
        )
        top = diff.ranked()[0]
        assert top.cork_rank is not None
        assert "cork" in top.render()

    def test_survivors_are_identity_matched(self, tmp_path):
        """Address recycling must not inflate survivor counts: identity is
        (addr, alloc_seq), not the address alone."""
        _vm, policy = _bracket_swapleak(tmp_path, static_rep=False)
        first = load_snapshot(policy.captured[0])
        last = load_snapshot(policy.captured[-1])
        diff = diff_snapshots(first, last)
        assert diff.survivor_identities == first.identities() & last.identities()


# -- policy triggers and violation annotation -------------------------------------------


class TestPolicy:
    def test_every_n_gcs_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotPolicy(str(tmp_path), every_n_gcs=0)

    def test_request_capture_is_one_shot(self, tmp_path):
        vm = VirtualMachine(heap_bytes=1 << 20)
        build_graph(vm, *DIAMOND)
        policy = SnapshotPolicy(str(tmp_path / "manual")).attach(vm)
        vm.gc()
        assert policy.captured == []
        policy.request_capture()
        vm.gc()
        assert len(policy.captured) == 1
        assert load_snapshot(policy.captured[0]).meta["trigger"] == "manual"
        vm.gc()
        assert len(policy.captured) == 1

    def test_on_violation_annotates_report(self, tmp_path):
        vm = VirtualMachine(heap_bytes=4 << 20)
        policy = SnapshotPolicy(str(tmp_path / "viol"), on_violation=True).attach(vm)
        run_swapleak(vm, SwapLeakConfig(swaps=8, assert_dead_swapped=True))
        log = vm.engine.log
        assert len(log) > 0
        assert any("violation" in path for path in policy.captured)
        violation = log.violations[0]
        assert violation.details["snapshot"] in policy.captured
        assert violation.details["retained_bytes"] > 0
        assert violation.details["dominator_chain"]
        rendered = log.lines[0]
        assert "Retained size:" in rendered
        assert "Dominator chain:" in rendered
        assert "Snapshot:" in rendered

    def test_violation_reports_carry_alloc_epoch_and_site(self, tmp_path):
        """Satellite: the failing object's allocation epoch and site tag."""
        vm = VirtualMachine(heap_bytes=4 << 20)
        run_swapleak(vm, SwapLeakConfig(swaps=8, assert_dead_swapped=True))
        log = vm.engine.log
        assert len(log) > 0
        violation = log.violations[0]
        assert violation.alloc_seq is not None
        assert violation.alloc_site == "SwapLeak.swap loop"
        assert "Allocated: epoch" in log.lines[0]
        assert "SwapLeak.swap loop" in log.lines[0]

    def test_snapshot_events_reach_telemetry(self, tmp_path):
        vm = VirtualMachine(heap_bytes=1 << 20)
        build_graph(vm, *DIAMOND)
        policy = SnapshotPolicy(str(tmp_path / "tel"), every_n_gcs=1).attach(vm)
        vm.gc()
        assert len(vm.telemetry.snapshots) == 1
        event = vm.telemetry.snapshots[0]
        assert event.event == "snapshot_written"
        assert event.path == policy.captured[0]
        assert event.objects == len(load_snapshot(event.path))
        assert os.path.getsize(event.path) == event.file_bytes
        assert "snapshot" in vm.telemetry.render()


# -- census slopes (shared with the Cork baseline) --------------------------------------


class TestCensusSlopes:
    def test_linear_growth_has_exact_slope(self):
        census = ClassCensus()
        for i in range(6):
            census.observe({"Leak": (i, 100 * i), "Flat": (3, 300)}, gc_number=i)
        assert census.slope("Leak") == pytest.approx(100.0)
        assert census.slope("Flat") == pytest.approx(0.0)
        assert census.slope("Unknown") == 0.0
        assert census.slopes()["Leak"] == pytest.approx(100.0)

    def test_profiler_ranked_slopes(self, tmp_path):
        vm = VirtualMachine(heap_bytes=4 << 20)
        profiler = TypeGrowthProfiler(vm)
        run_swapleak(
            vm,
            SwapLeakConfig(swaps=64, gc_every_swaps=8, assert_dead_swapped=False),
        )
        ranked = profiler.ranked_slopes()
        assert ranked == sorted(ranked, key=lambda kv: (-kv[1], kv[0]))
        names = [name for name, _slope in ranked]
        assert names.index("SObject") < names.index("SArray")
