"""Continuous heap-health monitoring (PR 6).

Turns the repo's event stream into an always-on operational surface:
bounded time series and MMU/utilization math (:mod:`timeseries`,
:mod:`mmu`), declarative pause SLOs with error budgets and multi-window
burn-rate alerts (:mod:`slo`), a composite health report (:mod:`health`),
a stdlib ``/metrics`` + ``/health`` + ``/slo`` HTTP server
(:mod:`server`), and the live ``repro monitor`` terminal view
(:mod:`view`).

The whole subsystem is a telemetry *sink*: arming it adds one sink to
the fan-out and nothing to allocation or tracing hot paths; a VM built
without ``monitor=`` carries zero monitoring state.
"""

from repro.monitor.health import (
    HEALTH_SCHEMA,
    health_report,
    health_score,
    health_status,
    validate_health_report,
)
from repro.monitor.mmu import (
    DEFAULT_MMU_WINDOWS,
    busy_time,
    merge_intervals,
    mmu,
    mmu_curve,
    utilization_timeline,
)
from repro.monitor.server import MonitorServer, render_monitor_metrics
from repro.monitor.slo import (
    SLO_SCHEMA,
    AlertEvent,
    BurnRateRule,
    SloObjective,
    SloSet,
    default_slos,
)
from repro.monitor.timeseries import MonitorHub, TimeSeries
from repro.monitor.view import render_monitor_frame, run_monitor

__all__ = [
    "AlertEvent",
    "BurnRateRule",
    "DEFAULT_MMU_WINDOWS",
    "HEALTH_SCHEMA",
    "MonitorHub",
    "MonitorServer",
    "SLO_SCHEMA",
    "SloObjective",
    "SloSet",
    "TimeSeries",
    "busy_time",
    "default_slos",
    "health_report",
    "health_score",
    "health_status",
    "merge_intervals",
    "mmu",
    "mmu_curve",
    "render_monitor_frame",
    "render_monitor_metrics",
    "run_monitor",
    "utilization_timeline",
    "validate_health_report",
]
