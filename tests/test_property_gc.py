"""Property-based GC correctness: random heap graphs + random mutations.

The central soundness/completeness invariants of a tracing collector:

* **Soundness** — no object reachable from a root is ever reclaimed.
* **Completeness** — after a full-heap collection, every unreachable object
  is gone.
* **Integrity** — no reference slot ever dangles, and collector metadata
  (spaces, object table, statistics) stays consistent.

Checked across all three collectors on randomly generated object graphs
subjected to random mutation/GC sequences.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.heap.layout import NULL
from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine

N_OBJECTS = 24
N_FIELDS = 3

#: A graph: for each object, a list of (field_index, target_object_index).
graph_strategy = st.lists(
    st.tuples(st.integers(0, N_FIELDS - 1), st.integers(0, N_OBJECTS - 1)),
    max_size=60,
)
roots_strategy = st.sets(st.integers(0, N_OBJECTS - 1), max_size=6)
collector_strategy = st.sampled_from(["marksweep", "semispace", "generational"])


def build_vm(collector):
    vm = VirtualMachine(heap_bytes=4 << 20, collector=collector)
    cls = vm.define_class(
        "G", [(f"f{i}", FieldKind.REF) for i in range(N_FIELDS)] + [("id", FieldKind.INT)]
    )
    return vm, cls


def materialize(vm, cls, edges, roots):
    """Build the graph; returns handles.  Roots go into statics."""
    with vm.scope("build"):
        objects = [vm.new(cls, id=i) for i in range(N_OBJECTS)]
        for i, (field_idx, target) in enumerate(edges):
            src = objects[i % N_OBJECTS]
            src[f"f{field_idx}"] = objects[target]
        for r in roots:
            vm.statics.set_ref(f"root{r}", objects[r].address)
    return objects


def reachable_indices(edges, roots):
    """Model-side reachability over the same graph."""
    adjacency = {i: set() for i in range(N_OBJECTS)}
    slots = {}
    for i, (field_idx, target) in enumerate(edges):
        slots[(i % N_OBJECTS, field_idx)] = target
    for (src, _field), target in slots.items():
        adjacency[src].add(target)
    seen = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(adjacency[node])
    return seen


@given(edges=graph_strategy, roots=roots_strategy, collector=collector_strategy)
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_reachability_is_exact(edges, roots, collector):
    """After one full GC, survivors == the model's reachable set."""
    vm, cls = build_vm(collector)
    objects = materialize(vm, cls, edges, roots)
    vm.gc()
    expected = reachable_indices(edges, roots)
    survivors = {obj["id"] for obj in objects if obj.is_live}
    assert survivors == expected


@given(edges=graph_strategy, roots=roots_strategy, collector=collector_strategy)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_no_dangling_references_after_gc(edges, roots, collector):
    vm, cls = build_vm(collector)
    materialize(vm, cls, edges, roots)
    vm.gc()
    heap = vm.heap
    for obj in heap:
        for ref in obj.reference_slots():
            if ref != NULL:
                assert heap.contains(ref)


@given(edges=graph_strategy, roots=roots_strategy, collector=collector_strategy)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_repeated_gc_is_stable(edges, roots, collector):
    """A second collection with no mutation reclaims nothing further."""
    vm, cls = build_vm(collector)
    materialize(vm, cls, edges, roots)
    vm.gc()
    live_after_first = vm.heap.stats.objects_live
    vm.gc()
    assert vm.heap.stats.objects_live == live_after_first


@given(
    edges=graph_strategy,
    roots=roots_strategy,
    cuts=st.lists(st.integers(0, N_OBJECTS - 1), max_size=6),
    collector=collector_strategy,
)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_mutation_then_gc_matches_model(edges, roots, cuts, collector):
    """Dropping random roots mid-run keeps the heap exact vs the model."""
    vm, cls = build_vm(collector)
    objects = materialize(vm, cls, edges, roots)
    vm.gc()
    remaining = set(roots) - set(cuts)
    for cut in cuts:
        vm.statics.drop_ref(f"root{cut}")
    vm.gc()
    expected = reachable_indices(edges, remaining)
    survivors = {obj["id"] for obj in objects if obj.is_live}
    assert survivors == expected


@given(
    edges=graph_strategy,
    roots=st.sets(st.integers(0, N_OBJECTS - 1), min_size=1, max_size=6),
    collector=collector_strategy,
)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_scalar_data_preserved_across_gc(edges, roots, collector):
    """Collections (including copying ones) never corrupt object payloads."""
    vm, cls = build_vm(collector)
    objects = materialize(vm, cls, edges, roots)
    vm.gc()
    for obj in objects:
        if obj.is_live:
            assert obj["id"] == objects.index(obj)


@given(edges=graph_strategy, roots=roots_strategy)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_infrastructure_does_not_change_reachability(edges, roots):
    """Base and Infrastructure configurations reclaim identical sets —
    the assertion infrastructure must be observation-only."""
    survivors = []
    for assertions in (False, True):
        vm = VirtualMachine(heap_bytes=4 << 20, assertions=assertions)
        cls = vm.define_class(
            "G",
            [(f"f{i}", FieldKind.REF) for i in range(N_FIELDS)] + [("id", FieldKind.INT)],
        )
        objects = materialize(vm, cls, edges, roots)
        vm.gc()
        survivors.append(frozenset(o["id"] for o in objects if o.is_live))
    assert survivors[0] == survivors[1]
