"""``_209_db``: the SPEC JVM98 database benchmark analog.

The real ``_209_db`` reads a script of operations against an in-memory
database of ``Entry`` records (each holding a vector of string items) —
add, delete, find, sort.  The paper instruments it two ways (§3.1.1):

* "we asserted that all Entry objects are owned by their containing
  Database object" — ``assert-ownedby`` at every add (15,553 calls in the
  paper's run, ~15,274 live ownees checked per GC);
* "we added assert-dead assertions at code locations where the authors had
  assigned null to an instance variable" — the delete path (695 calls).

The injectable bug (``leak_external_cache``) reproduces the §2.5.2 leak
pattern: found entries are also cached in an *external* static cache that is
never cleared, so deleted entries stay reachable — only from outside their
owner — and both the ownership and the assert-dead assertions fire.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.heap.object_model import FieldKind
from repro.runtime.handles import Handle
from repro.runtime.vm import VirtualMachine
from repro.workloads.containers import Vector

DATABASE = "spec.db.Database"
ENTRY = "spec.db.Entry"


def define_db_classes(vm: VirtualMachine) -> None:
    if vm.classes.maybe(DATABASE) is not None:
        return
    vm.define_class(
        DATABASE,
        [("entries", FieldKind.REF), ("name", FieldKind.STR), ("nextId", FieldKind.INT)],
    )
    vm.define_class(
        ENTRY,
        [("id", FieldKind.INT), ("items", FieldKind.REF), ("key", FieldKind.STR)],
    )


@dataclass
class DbConfig:
    initial_entries: int = 250
    operations: int = 6000
    items_per_entry: int = 3
    key_space: int = 2500
    seed: int = 99
    # Operation mix weights.
    add_weight: int = 5
    delete_weight: int = 5
    find_weight: int = 3
    sort_every: int = 1000
    # Assertion placements (the paper's, §3.1.1).
    assert_ownedby_entries: bool = False
    assert_dead_on_delete: bool = False
    # Bug: found entries cached in a never-cleared external cache.
    leak_external_cache: bool = False
    # Explicit GC cadence (0 = only allocation-triggered GCs).
    gc_every: int = 0

    @classmethod
    def paper_scale(cls) -> "DbConfig":
        """Sized so assertion volumes approach §3.1.2's in-text numbers
        (~15k live owned entries per GC, hundreds of assert-dead calls)."""
        return cls(
            initial_entries=15000,
            operations=4000,
            add_weight=3,
            delete_weight=3,
            find_weight=10,
            sort_every=0,
        )


@dataclass
class DbResult:
    adds: int = 0
    deletes: int = 0
    finds: int = 0
    sorts: int = 0
    violations: int = 0
    final_size: int = 0


class Database:
    """Driver wrapper around the on-heap database."""

    def __init__(self, vm: VirtualMachine, config: DbConfig):
        define_db_classes(vm)
        self.vm = vm
        self.config = config
        self.rng = random.Random(config.seed)
        with vm.scope("Database.init"):
            self.handle = vm.new(DATABASE, name="db", nextId=0)
            self.entries = Vector.new(vm, capacity=max(8, config.initial_entries))
            self.handle["entries"] = self.entries.handle
        vm.statics.set_ref("spec.db.database", self.handle.address)
        if config.leak_external_cache:
            cache = Vector.new(vm)
            vm.statics.set_ref("spec.db.foundCache", cache.handle.address)
            self.cache: Vector | None = cache
        else:
            self.cache = None
        self.result = DbResult()

    # -- operations ------------------------------------------------------------------

    def add(self) -> Handle:
        vm = self.vm
        entry_id = self.handle["nextId"]
        self.handle["nextId"] = entry_id + 1
        key = f"key-{self.rng.randrange(self.config.key_space)}"
        with vm.scope("Database.add"):
            entry = vm.new(ENTRY, id=entry_id, key=key)
            items = vm.new_array(FieldKind.STR, self.config.items_per_entry)
            for i in range(self.config.items_per_entry):
                items[i] = f"item-{entry_id}-{i}"
            entry["items"] = items
            self.entries.append(entry)
        if self.config.assert_ownedby_entries and vm.assertions is not None:
            vm.assertions.assert_ownedby(self.handle, entry, site="Database.add")
        self.result.adds += 1
        return entry

    def delete(self) -> None:
        """Remove a random entry — the site where the original authors
        null the reference, where the paper adds assert-dead."""
        size = len(self.entries)
        if size == 0:
            return
        index = self.rng.randrange(size)
        entry = self.entries.remove_at(index)
        if entry is not None and self.config.assert_dead_on_delete and self.vm.assertions is not None:
            self.vm.assertions.assert_dead(entry, site="Database.remove (ref nulled)")
        self.result.deletes += 1

    def find(self) -> Handle | None:
        """Linear scan by key; optionally caches hits in the external cache."""
        target = f"key-{self.rng.randrange(self.config.key_space)}"
        found: Handle | None = None
        for entry in self.entries:
            if entry is not None and entry["key"] == target:
                found = entry
                break
        if found is not None and self.cache is not None:
            self.cache.append(found)  # the leak: never cleared
        self.result.finds += 1
        return found

    def sort(self) -> None:
        """Shell sort of the entry vector by id (the _209_db sort phase)."""
        n = len(self.entries)
        data = self.entries

        gap = n // 2
        while gap > 0:
            for i in range(gap, n):
                current = data.get(i)
                current_id = current["id"] if current is not None else -1
                j = i
                while j >= gap:
                    other = data.get(j - gap)
                    other_id = other["id"] if other is not None else -1
                    if other_id <= current_id:
                        break
                    data.set(j, other)
                    j -= gap
                data.set(j, current)
            gap //= 2
        self.result.sorts += 1

    # -- driver -----------------------------------------------------------------------

    def run(self) -> DbResult:
        config = self.config
        for _ in range(config.initial_entries):
            self.add()
        weights = (
            ["add"] * config.add_weight
            + ["delete"] * config.delete_weight
            + ["find"] * config.find_weight
        )
        for op_index in range(config.operations):
            op = self.rng.choice(weights)
            if op == "add":
                self.add()
            elif op == "delete":
                self.delete()
            else:
                self.find()
            if config.sort_every and (op_index + 1) % config.sort_every == 0:
                self.sort()
            if config.gc_every and (op_index + 1) % config.gc_every == 0:
                self.vm.gc(reason="db explicit cadence")
        self.result.final_size = len(self.entries)
        if self.vm.engine is not None:
            self.result.violations = len(self.vm.engine.log)
        return self.result


def run_db(vm: VirtualMachine, config: DbConfig | None = None) -> DbResult:
    """Run the _209_db analog on ``vm``."""
    return Database(vm, config or DbConfig()).run()
