"""Regeneration of the paper's figures (2–5) and in-text tables.

Every entry point returns a :class:`FigureResult`: per-benchmark rows plus
suite-level aggregates, and can render itself as the ASCII analog of the
paper's bar charts.  Paper reference values are attached so EXPERIMENTS.md
can print paper-vs-measured side by side.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.bench.methodology import (
    Config,
    OverheadRow,
    Sample,
    compare,
    confidence_interval_90,
    geometric_mean,
    mean,
    run_sample,
)
from repro.workloads.suite import SuiteEntry, build_suite

#: Paper-reported aggregates for each figure (for the shape comparison).
PAPER_REFERENCE = {
    "fig2": {
        "description": "run-time overhead of the assertion infrastructure",
        "geomean_overhead_pct": 2.75,
        "mutator_overhead_pct": 1.12,
    },
    "fig3": {
        "description": "GC-time overhead of the assertion infrastructure",
        "geomean_overhead_pct": 13.36,
        "worst_case": ("bloat", 30.0),
    },
    "fig4": {
        "description": "run-time overhead with assertions (vs Base)",
        "db_overhead_pct": 1.02,
        "pseudojbb_overhead_pct": 1.84,
    },
    "fig5": {
        "description": "GC-time overhead with assertions (vs Base)",
        "db_overhead_pct": 49.7,
        "pseudojbb_overhead_pct": 15.3,
        "db_vs_infrastructure_pct": 30.1,
        "pseudojbb_vs_infrastructure_pct": 4.40,
    },
    "counts": {
        "db_assert_dead_calls": 695,
        "db_assert_ownedby_calls": 15553,
        "db_ownees_per_gc": 15274,
        "pseudojbb_assert_ownedby_calls": 31038,
        "pseudojbb_assert_instances_calls": 1,
        "pseudojbb_ownees_per_gc": 420,
    },
}


@dataclass
class FigureResult:
    figure: str
    metric: str
    config_b: Config
    rows: list[OverheadRow] = field(default_factory=list)
    paper: dict = field(default_factory=dict)
    config_a: Config = Config.BASE

    @property
    def geomean_ratio(self) -> float:
        return geometric_mean([r.ratio for r in self.rows])

    @property
    def geomean_overhead_pct(self) -> float:
        return (self.geomean_ratio - 1.0) * 100.0

    def row(self, benchmark: str) -> OverheadRow:
        for r in self.rows:
            if r.benchmark == benchmark:
                return r
        raise KeyError(benchmark)

    def render(self, width: int = 40) -> str:
        """ASCII bar chart, normalized to Base = 100 (like the figures)."""
        lines = [
            f"{self.figure}: {self.metric} — {self.config_a.value} vs "
            f"{self.config_b.value} (normalized, {self.config_a.value} = 100)"
        ]
        max_ratio = max((r.ratio for r in self.rows), default=1.0)
        scale = width / max(max_ratio, 1.0)
        for r in self.rows:
            bar = "#" * max(1, int(r.ratio * scale))
            lines.append(
                f"  {r.benchmark:12} {r.ratio * 100:7.1f} |{bar}"
                f"  (+{r.overhead_pct:.1f}%)"
            )
        lines.append(
            f"  {'geomean':12} {self.geomean_ratio * 100:7.1f}  "
            f"(+{self.geomean_overhead_pct:.2f}%)"
        )
        if self.paper:
            lines.append(f"  paper: {self.paper}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "figure": self.figure,
            "metric": self.metric,
            "config": self.config_b.value,
            "geomean_overhead_pct": self.geomean_overhead_pct,
            "rows": {
                r.benchmark: {
                    "ratio": r.ratio,
                    "overhead_pct": r.overhead_pct,
                    "base_mean_s": r.base_mean,
                    "other_mean_s": r.other_mean,
                    "base_ci90_s": r.base_ci,
                    "other_ci90_s": r.other_ci,
                }
                for r in self.rows
            },
            "paper": self.paper,
        }


def _suite_subset(benchmarks: Optional[list[str]]) -> list[SuiteEntry]:
    suite = build_suite()
    if benchmarks is None:
        return list(suite.values())
    return [suite[name] for name in benchmarks]


def figure2_runtime_infrastructure(
    trials: int = 5, benchmarks: Optional[list[str]] = None
) -> FigureResult:
    """Figure 2: total-run-time overhead of Base → Infrastructure."""
    result = FigureResult(
        "fig2", "total run time", Config.INFRASTRUCTURE, paper=PAPER_REFERENCE["fig2"]
    )
    for entry in _suite_subset(benchmarks):
        result.rows.append(
            compare(entry, Config.BASE, Config.INFRASTRUCTURE, "total", trials)
        )
    return result


def figure3_gctime_infrastructure(
    trials: int = 5, benchmarks: Optional[list[str]] = None
) -> FigureResult:
    """Figure 3: GC-time overhead of Base → Infrastructure."""
    result = FigureResult(
        "fig3", "GC time", Config.INFRASTRUCTURE, paper=PAPER_REFERENCE["fig3"]
    )
    for entry in _suite_subset(benchmarks):
        result.rows.append(
            compare(entry, Config.BASE, Config.INFRASTRUCTURE, "gc", trials)
        )
    return result


#: Benchmarks the paper instruments with assertions (§3.1.1).
ASSERTED_BENCHMARKS = ["db", "pseudojbb"]


def figure4_runtime_withassertions(trials: int = 5) -> FigureResult:
    """Figure 4: total-run-time overhead of Base → WithAssertions for the
    two instrumented benchmarks."""
    result = FigureResult(
        "fig4", "total run time", Config.WITH_ASSERTIONS, paper=PAPER_REFERENCE["fig4"]
    )
    for entry in _suite_subset(ASSERTED_BENCHMARKS):
        result.rows.append(
            compare(entry, Config.BASE, Config.WITH_ASSERTIONS, "total", trials)
        )
    return result


def figure5_gctime_withassertions(trials: int = 5) -> FigureResult:
    """Figure 5: GC-time overhead of Base → WithAssertions."""
    result = FigureResult(
        "fig5", "GC time", Config.WITH_ASSERTIONS, paper=PAPER_REFERENCE["fig5"]
    )
    for entry in _suite_subset(ASSERTED_BENCHMARKS):
        result.rows.append(
            compare(entry, Config.BASE, Config.WITH_ASSERTIONS, "gc", trials)
        )
    return result


def _row_from_samples(sample_a: Sample, sample_b: Sample, metric: str) -> OverheadRow:
    pick = {"total": Sample.totals, "gc": Sample.gcs, "mutator": Sample.mutators}[metric]
    values_a, values_b = pick(sample_a), pick(sample_b)
    return OverheadRow(
        benchmark=sample_a.benchmark,
        base_mean=mean(values_a),
        other_mean=mean(values_b),
        base_ci=confidence_interval_90(values_a),
        other_ci=confidence_interval_90(values_b),
        counters_base=sample_a.counters(),
        counters_other=sample_b.counters(),
    )


def infrastructure_figures(
    trials: int = 5, benchmarks: Optional[list[str]] = None
) -> dict[str, FigureResult]:
    """Figures 2 and 3 from one shared set of Base/Infrastructure samples."""
    fig2 = FigureResult(
        "fig2", "total run time", Config.INFRASTRUCTURE, paper=PAPER_REFERENCE["fig2"]
    )
    fig2_mutator = FigureResult(
        "fig2-mutator", "mutator time", Config.INFRASTRUCTURE,
        paper=PAPER_REFERENCE["fig2"],
    )
    fig3 = FigureResult(
        "fig3", "GC time", Config.INFRASTRUCTURE, paper=PAPER_REFERENCE["fig3"]
    )
    for entry in _suite_subset(benchmarks):
        base = run_sample(entry, Config.BASE, trials)
        infra = run_sample(entry, Config.INFRASTRUCTURE, trials)
        fig2.rows.append(_row_from_samples(base, infra, "total"))
        fig2_mutator.rows.append(_row_from_samples(base, infra, "mutator"))
        fig3.rows.append(_row_from_samples(base, infra, "gc"))
    return {"fig2": fig2, "fig2-mutator": fig2_mutator, "fig3": fig3}


def withassertions_figures(trials: int = 5) -> dict[str, FigureResult]:
    """Figures 4 and 5 (plus the vs-Infrastructure comparison) from one
    shared set of Base/Infrastructure/WithAssertions samples."""
    fig4 = FigureResult(
        "fig4", "total run time", Config.WITH_ASSERTIONS, paper=PAPER_REFERENCE["fig4"]
    )
    fig5 = FigureResult(
        "fig5", "GC time", Config.WITH_ASSERTIONS, paper=PAPER_REFERENCE["fig5"]
    )
    fig4_infra = FigureResult(
        "fig4-infra", "total run time", Config.WITH_ASSERTIONS,
        paper=PAPER_REFERENCE["fig4"], config_a=Config.INFRASTRUCTURE,
    )
    fig5_infra = FigureResult(
        "fig5-infra", "GC time", Config.WITH_ASSERTIONS,
        paper=PAPER_REFERENCE["fig5"], config_a=Config.INFRASTRUCTURE,
    )
    for entry in _suite_subset(ASSERTED_BENCHMARKS):
        base = run_sample(entry, Config.BASE, trials)
        infra = run_sample(entry, Config.INFRASTRUCTURE, trials)
        asserted = run_sample(entry, Config.WITH_ASSERTIONS, trials)
        fig4.rows.append(_row_from_samples(base, asserted, "total"))
        fig5.rows.append(_row_from_samples(base, asserted, "gc"))
        fig4_infra.rows.append(_row_from_samples(infra, asserted, "total"))
        fig5_infra.rows.append(_row_from_samples(infra, asserted, "gc"))
    return {
        "fig4": fig4,
        "fig5": fig5,
        "fig4-infra": fig4_infra,
        "fig5-infra": fig5_infra,
    }


def figures_payload(
    results: dict[str, FigureResult], trials: Optional[int] = None
) -> dict:
    """Machine-readable form of a set of figure results, with enough
    provenance (timestamp, interpreter, trial count) to compare runs across
    PRs."""
    return {
        "schema": "repro-bench-figures/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "trials": trials,
        "figures": {name: result.as_dict() for name, result in sorted(results.items())},
    }


def dump_figures(
    results: dict[str, FigureResult],
    path: str = "BENCH_figures.json",
    trials: Optional[int] = None,
) -> str:
    """Write :func:`figures_payload` as JSON; returns the path written.

    This is the perf-trajectory record: ``python -m repro figures
    --json-out BENCH_figures.json`` refreshes it so successive PRs can
    diff measured overheads, not just eyeball ASCII charts.
    """
    with open(path, "w") as handle:
        json.dump(figures_payload(results, trials), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def figure5_vs_infrastructure(trials: int = 5) -> FigureResult:
    """Figure 5's second comparison: Infrastructure → WithAssertions."""
    result = FigureResult(
        "fig5-infra", "GC time", Config.WITH_ASSERTIONS,
        paper=PAPER_REFERENCE["fig5"], config_a=Config.INFRASTRUCTURE,
    )
    for entry in _suite_subset(ASSERTED_BENCHMARKS):
        result.rows.append(
            compare(entry, Config.INFRASTRUCTURE, Config.WITH_ASSERTIONS, "gc", trials)
        )
    return result
