"""lusearch: the DaCapo text-search benchmark analog (§3.2.2).

A small Lucene-shaped search engine built on the simulated heap: an inverted
index (chained hash table from terms to posting lists) built over a
deterministic synthetic corpus, and an ``IndexSearcher`` that runs term
queries and allocates per-query scoring objects.

The paper's finding: "We instrumented lusearch with an assert-instances
assertion stating that only one instance of IndexSearcher should be live.
We found that for most of the benchmark's execution, 32 instances of
IndexSearcher are live, one for each thread performing searches."  The
``share_searcher`` switch reproduces both the buggy per-thread-searcher
behavior and the repaired shared-searcher behavior.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.heap.object_model import FieldKind
from repro.runtime.handles import Handle
from repro.runtime.scheduler import Scheduler
from repro.runtime.vm import VirtualMachine
from repro.workloads.containers import HashTable, IntVector

INDEX = "lucene.Index"
SEARCHER = "lucene.IndexSearcher"
READER = "lucene.IndexReader"
TERM_INFO = "lucene.TermInfo"
SCORE_DOC = "lucene.ScoreDoc"
HITS = "lucene.Hits"

#: Vocabulary used to synthesize documents (drawn zipf-ish by rank).
_VOCAB_SIZE_DEFAULT = 200


def define_lucene_classes(vm: VirtualMachine) -> None:
    if vm.classes.maybe(INDEX) is not None:
        return
    vm.define_class(
        INDEX,
        [("dictionary", FieldKind.REF), ("ndocs", FieldKind.INT), ("name", FieldKind.STR)],
    )
    vm.define_class(TERM_INFO, [("term", FieldKind.STR), ("postings", FieldKind.REF), ("docFreq", FieldKind.INT)])
    vm.define_class(READER, [("index", FieldKind.REF), ("buffer", FieldKind.REF)])
    vm.define_class(SEARCHER, [("reader", FieldKind.REF), ("scoreCache", FieldKind.REF)])
    vm.define_class(SCORE_DOC, [("doc", FieldKind.INT), ("score", FieldKind.FLOAT)])
    vm.define_class(HITS, [("docs", FieldKind.REF), ("count", FieldKind.INT)])


def _term(rank: int) -> str:
    return f"term{rank:04d}"


def _draw_term_rank(rng: random.Random, vocab: int) -> int:
    """Zipf-flavored rank draw: low ranks much more likely."""
    u = rng.random()
    return min(int(vocab * u * u), vocab - 1)


def build_index(
    vm: VirtualMachine,
    ndocs: int,
    terms_per_doc: int,
    vocab: int = _VOCAB_SIZE_DEFAULT,
    seed: int = 7,
) -> Handle:
    """Index a synthetic corpus; returns the on-heap Index object."""
    define_lucene_classes(vm)
    rng = random.Random(seed)
    with vm.scope("build_index"):
        index = vm.new(INDEX, ndocs=ndocs, name="lusearch-index")
        dictionary = HashTable.new(vm, buckets=max(16, vocab // 2))
        index["dictionary"] = dictionary.handle
        for doc in range(ndocs):
            seen: set[int] = set()
            for _ in range(terms_per_doc):
                rank = _draw_term_rank(rng, vocab)
                if rank in seen:
                    continue
                seen.add(rank)
                term = _term(rank)
                info = dictionary.get(term)
                if info is None:
                    with vm.scope("new-term"):
                        info = vm.new(TERM_INFO, term=term, docFreq=0)
                        info["postings"] = IntVector.new(vm).handle
                        dictionary.put(term, info)
                IntVector(vm, info["postings"]).append(doc)
                info["docFreq"] = info["docFreq"] + 1
    return index


def new_searcher(vm: VirtualMachine, index: Handle) -> Handle:
    """Open an IndexSearcher (reader + scoring scratch buffers)."""
    with vm.scope("IndexSearcher.open"):
        reader = vm.new(READER)
        reader["index"] = index
        reader["buffer"] = vm.new_array(FieldKind.INT, 256)
        searcher = vm.new(SEARCHER)
        searcher["reader"] = reader
        searcher["scoreCache"] = vm.new_array(FieldKind.FLOAT, 128)
    return searcher


def search(vm: VirtualMachine, searcher: Handle, term: str, limit: int = 10) -> Handle:
    """Run one term query; returns a Hits object with ScoreDoc results."""
    index = searcher["reader"]["index"]
    dictionary = HashTable(vm, index["dictionary"])
    info = dictionary.get(term)
    with vm.scope("search"):
        hits = vm.new(HITS, count=0)
        if info is None:
            hits["docs"] = vm.new_array(vm.classes.get(SCORE_DOC), 0)
            return hits
        postings = IntVector(vm, info["postings"])
        n = min(limit, len(postings))
        docs = vm.new_array(vm.classes.get(SCORE_DOC), n)
        hits["docs"] = docs
        ndocs = index["ndocs"]
        doc_freq = info["docFreq"]
        idf = 1.0 + (ndocs / (1.0 + doc_freq))
        for i in range(n):
            doc = postings.get(i)
            docs[i] = vm.new(SCORE_DOC, doc=doc, score=idf / (1.0 + i))
        hits["count"] = n
    return hits


@dataclass
class LusearchConfig:
    threads: int = 32
    queries_per_thread: int = 60
    ndocs: int = 120
    terms_per_doc: int = 12
    vocab: int = _VOCAB_SIZE_DEFAULT
    seed: int = 7
    #: The repair: one shared IndexSearcher instead of one per thread.
    share_searcher: bool = False
    #: The paper's assertion: at most one live IndexSearcher.
    assert_single_searcher: bool = False
    #: Trigger a GC mid-run (while all searchers are open), as the
    #: benchmark's allocation pressure would.
    gc_midway: bool = True


@dataclass
class LusearchResult:
    queries: int = 0
    hits: int = 0
    searchers_created: int = 0
    violations: int = 0
    peak_live_searchers: int = 0


def run_lusearch(vm: VirtualMachine, config: LusearchConfig | None = None) -> LusearchResult:
    """Run the lusearch analog on ``vm`` with cooperative threads."""
    config = config or LusearchConfig()
    define_lucene_classes(vm)
    result = LusearchResult()
    rng = random.Random(config.seed)

    with vm.scope("lusearch-index"):
        index = build_index(vm, config.ndocs, config.terms_per_doc, config.vocab, config.seed)
        vm.statics.set_ref("lusearch.index", index.address)

    if config.assert_single_searcher and vm.assertions is not None:
        vm.assertions.assert_instances(SEARCHER, 1)

    shared_searcher: Handle | None = None
    if config.share_searcher:
        shared_searcher = new_searcher(vm, index)
        vm.statics.set_ref("lusearch.sharedSearcher", shared_searcher.address)
        result.searchers_created = 1

    scheduler = Scheduler(vm)
    query_plans = [
        [_term(_draw_term_rank(rng, config.vocab)) for _ in range(config.queries_per_thread)]
        for _ in range(config.threads)
    ]

    def worker(plan):
        def body(vm, thread):
            frame = thread.push_frame("lusearch.QueryThread.run")
            try:
                if shared_searcher is not None:
                    searcher = shared_searcher
                else:
                    # The bug: every thread opens its own IndexSearcher and
                    # keeps it live for its whole run.
                    searcher = new_searcher(vm, index)
                    result.searchers_created += 1
                frame.set_ref("searcher", searcher.address)
                for term in plan:
                    hits = search(vm, searcher, term)
                    result.hits += hits["count"]
                    result.queries += 1
                    yield  # safepoint: other threads interleave here
            finally:
                thread.pop_frame()

        return body

    scheduler.spawn_all([worker(plan) for plan in query_plans], prefix="lusearch")

    total_steps = config.threads * config.queries_per_thread
    midpoint = total_steps // 2
    steps = 0
    while scheduler.pending:
        scheduler.step()
        steps += 1
        if config.gc_midway and steps == midpoint:
            vm.gc(reason="lusearch midway")
            searcher_cls = vm.classes.get(SEARCHER)
            result.peak_live_searchers = sum(
                1 for obj in vm.heap if obj.cls is searcher_cls
            )

    if vm.engine is not None:
        result.violations = len(vm.engine.log)
    return result
