"""Telemetry subsystem: events, histograms, census, sinks, ring bounding."""

import json

import pytest

from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine
from repro.telemetry import (
    EVENT_SCHEMA,
    EventRing,
    GcEvent,
    JsonlSink,
    LogHistogram,
    MemorySink,
    Telemetry,
    render_prometheus,
    take_census,
    validate_exposition,
)
from repro.telemetry.census import ClassCensus
from tests.conftest import ALL_COLLECTORS, build_chain, make_node_class


def _churn(vm, rounds=3, per_round=20, cls=None):
    if cls is None:
        cls = vm.classes.maybe("Node") or make_node_class(vm)
    for _ in range(rounds):
        with vm.scope():
            for _ in range(per_round):
                vm.new(cls)
        vm.gc()
    return cls


class TestEventStream:
    @pytest.mark.parametrize("collector", ALL_COLLECTORS)
    def test_events_emitted_per_collection(self, collector):
        vm = VirtualMachine(heap_bytes=1 << 20, collector=collector)
        _churn(vm)
        events = vm.telemetry.events.snapshot()
        assert len(events) == 3
        assert [e.seq for e in events] == [1, 2, 3]
        for event in events:
            assert event.collector == collector
            assert event.kind == "full"
            assert event.trigger == "explicit"
            assert event.pause_s > 0
            assert event.objects_traced >= 0
            assert event.heap_bytes == 1 << 20
            assert 0.0 <= event.occupancy_after <= 1.0

    def test_event_decomposition_matches_collection(self, vm, node_class):
        build_chain(vm, node_class, 8)
        with vm.scope():
            for _ in range(5):
                vm.new(node_class)
        vm.gc()
        event = vm.telemetry.events.latest
        # 5 scoped nodes died, the rooted chain survived.
        assert event.objects_freed == 5
        assert event.bytes_freed > 0
        assert event.live_after == event.live_before - 5
        assert event.bytes_after < event.bytes_before
        assert event.mark_s > 0 and event.sweep_s > 0
        assert event.pause_s >= event.mark_s

    def test_generational_minor_vs_full_kinds(self):
        vm = VirtualMachine(heap_bytes=1 << 20, collector="generational")
        cls = make_node_class(vm)
        with vm.scope():
            vm.new(cls)
        vm.minor_gc()
        vm.gc()
        kinds = [e.kind for e in vm.telemetry.events]
        assert kinds == ["minor", "full"]
        assert vm.telemetry.collections_by_kind == {"minor": 1, "full": 1}

    def test_violations_counted_on_event_and_by_kind(self, vm, node_class):
        with vm.scope():
            victim = vm.new(node_class)
            vm.statics.set_ref("keep", victim.address)
            vm.assertions.assert_dead(victim, site="telemetry-test")
        vm.gc()
        event = vm.telemetry.events.latest
        assert event.violations == 1
        assert vm.telemetry.violations_by_kind == {"assert-dead": 1}

    def test_pause_histogram_fed_per_collection(self, vm, node_class):
        _churn(vm, rounds=4)
        assert vm.telemetry.pause_hist.count == 4
        assert vm.telemetry.pause_hist.summary()["p99"] > 0

    def test_allocation_sizes_recorded(self, vm, node_class):
        before = vm.telemetry.alloc_hist.count
        with vm.scope():
            vm.new(node_class)
            vm.new_array(FieldKind.INT, 64)
        assert vm.telemetry.alloc_hist.count == before + 2
        assert vm.telemetry.alloc_hist.max_value >= 64 * 8

    def test_wall_and_mono_timestamps_stamped(self, vm, node_class):
        import time

        wall_before = time.time()
        _churn(vm, rounds=2)
        wall_after = time.time()
        for event in vm.telemetry.events:
            assert wall_before <= event.wall_time <= wall_after
            assert event.mono_time > 0.0
            start, end = event.pause_interval
            assert end == event.mono_time
            assert end - start == pytest.approx(event.pause_s)
        # Events are chronological on the monotonic clock.
        monos = [e.mono_time for e in vm.telemetry.events]
        assert monos == sorted(monos)

    def test_rows_are_schema_versioned(self, vm, node_class):
        _churn(vm, rounds=1)
        row = vm.telemetry.events.latest.as_dict()
        assert row["schema"] == EVENT_SCHEMA == "repro-gc-event/2"
        assert "wall_time" in row and "mono_time" in row

    def test_from_row_loads_current_and_v1_rows(self, vm, node_class):
        _churn(vm, rounds=1)
        event = vm.telemetry.events.latest
        row = json.loads(json.dumps(event.as_dict()))
        assert GcEvent.from_row(row) == event
        # A version-1 row: no schema key, no timestamps, no derived keys.
        v1 = {
            k: v for k, v in row.items()
            if k not in ("schema", "wall_time", "mono_time",
                         "occupancy_before", "occupancy_after")
        }
        loaded = GcEvent.from_row(v1)
        assert loaded.seq == event.seq
        assert loaded.pause_s == event.pause_s
        assert loaded.wall_time == 0.0 and loaded.mono_time == 0.0


class TestDisabledMode:
    def test_disabled_vm_has_no_hub(self):
        vm = VirtualMachine(heap_bytes=1 << 20, telemetry=False)
        assert vm.telemetry is None
        assert vm.collector.telemetry is None
        _churn(vm)  # must not blow up anywhere on the emit path

    def test_disabled_hub_records_nothing(self):
        hub = Telemetry(enabled=False)
        vm = VirtualMachine(heap_bytes=1 << 20, telemetry=hub)
        _churn(vm)
        assert len(hub.events) == 0
        assert hub.pause_hist.count == 0
        assert hub.alloc_hist.count == 0

    def test_work_counters_identical_enabled_vs_disabled(self):
        def counters(telemetry):
            vm = VirtualMachine(heap_bytes=128 << 10, telemetry=telemetry)
            _churn(vm, rounds=3, per_round=50)
            return vm.stats.snapshot()["counters"]

        assert counters(True) == counters(False)


class TestEventRing:
    def _event(self, seq):
        return GcEvent(
            seq=seq, collector="marksweep", kind="full", trigger="t",
            pause_s=0.001, ownership_s=0.0, mark_s=0.0, sweep_s=0.0,
            objects_traced=0, edges_traced=0, objects_swept=0,
            objects_freed=0, bytes_freed=0, objects_promoted=0,
            bytes_before=0, bytes_after=0, live_before=0, live_after=0,
            heap_bytes=1024, assertion_checks=0, ownees_checked=0, violations=0,
        )

    def test_bounded_with_drop_accounting(self):
        ring = EventRing(capacity=4)
        for seq in range(10):
            ring.append(self._event(seq))
        assert len(ring) == 4
        assert ring.dropped == 6
        assert ring.appended == 10
        assert [e.seq for e in ring] == [6, 7, 8, 9]
        assert ring.latest.seq == 9

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventRing(capacity=0)

    def test_vm_ring_bounds_long_runs(self):
        vm = VirtualMachine(heap_bytes=1 << 20, telemetry=Telemetry(ring_capacity=5))
        _churn(vm, rounds=8)
        assert len(vm.telemetry.events) == 5
        assert vm.telemetry.events.dropped == 3
        assert [e.seq for e in vm.telemetry.events] == [4, 5, 6, 7, 8]


class TestLogHistogram:
    def test_percentiles_on_uniform_distribution(self):
        hist = LogHistogram(1, 10_000, buckets_per_decade=10)
        for value in range(1, 1001):
            hist.record(value)
        # Log buckets at 10/decade have ~26% relative width; interpolation
        # should land well within one bucket of the true percentile.
        assert hist.percentile(50) == pytest.approx(500, rel=0.30)
        assert hist.percentile(90) == pytest.approx(900, rel=0.30)
        assert hist.percentile(99) == pytest.approx(990, rel=0.30)
        assert hist.percentile(0) == 1
        assert hist.percentile(100) == 1000
        assert hist.count == 1000
        assert hist.mean == pytest.approx(500.5)

    def test_percentiles_on_bimodal_distribution(self):
        hist = LogHistogram(1e-6, 10.0)
        for _ in range(90):
            hist.record(0.001)
        for _ in range(10):
            hist.record(1.0)
        assert hist.percentile(50) == pytest.approx(0.001, rel=0.35)
        assert hist.percentile(99) == pytest.approx(1.0, rel=0.35)

    def test_constant_distribution_collapses(self):
        hist = LogHistogram(1, 1000)
        for _ in range(50):
            hist.record(42)
        for p in (1, 50, 99, 100):
            assert hist.percentile(p) == pytest.approx(42)

    def test_out_of_range_values_are_kept(self):
        hist = LogHistogram(10, 100)
        hist.record(1)       # below lo -> first bucket
        hist.record(10_000)  # above hi -> overflow bucket
        assert hist.count == 2
        assert hist.min_value == 1
        assert hist.max_value == 10_000
        assert hist.percentile(100) == 10_000

    def test_empty_histogram_summary(self):
        summary = LogHistogram(1, 10).summary()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            LogHistogram(0, 10)
        with pytest.raises(ValueError):
            LogHistogram(10, 10)

    def test_prometheus_buckets_are_cumulative_shape(self):
        hist = LogHistogram(1, 100)
        for value in (1, 5, 50, 5000):
            hist.record(value)
        buckets = hist.nonzero_buckets()
        assert sum(count for _upper, count in buckets) == 4
        assert buckets[-1][0] == float("inf")  # overflow bucket


class TestCensus:
    def test_take_census_counts_and_bytes(self, vm, node_class):
        build_chain(vm, node_class, 4)
        census = take_census(vm.heap)
        assert census["Node"][0] == 4
        assert census["Node"][1] > 0

    def test_series_stay_aligned_through_class_birth_and_death(self):
        census = ClassCensus()
        census.observe({"A": (1, 8)}, gc_number=1)
        census.observe({"A": (2, 16), "B": (1, 8)}, gc_number=2)
        census.observe({"B": (3, 24)}, gc_number=3)
        assert census.samples == 3
        assert census.count_series("A") == [1, 2, 0]
        assert census.bytes_series("B") == [0, 8, 24]
        assert census.gc_numbers == [1, 2, 3]
        assert census.latest() == {"B": (3, 24)}

    def test_vm_samples_census_at_every_gc(self, vm, node_class):
        build_chain(vm, node_class, 6)
        vm.gc()
        vm.gc()
        census = vm.telemetry.census
        assert census.samples == 2
        assert census.count_series("Node") == [6, 6]

    def test_cork_profiler_consumes_telemetry_census(self, vm):
        from repro.baselines import TypeGrowthProfiler
        from repro.workloads.containers import Vector

        leak_cls = vm.define_class("Leaky", [("p", FieldKind.INT)])
        profiler = TypeGrowthProfiler(vm)
        assert isinstance(profiler.census, ClassCensus)
        retained = Vector.new(vm)
        vm.statics.set_ref("r", retained.handle.address)
        for _ in range(4):
            with vm.scope():
                for _ in range(8):
                    retained.append(vm.new(leak_cls))
            vm.gc()
        assert profiler.collections_observed == 4
        assert len(profiler.history["Leaky"]) == 4
        assert any(r.type_name == "Leaky" for r in profiler.report())


class TestSinks:
    def test_memory_sink_receives_every_event(self, vm, node_class):
        sink = vm.telemetry.add_sink(MemorySink())
        _churn(vm, rounds=3)
        assert len(sink) == 3
        assert [e.seq for e in sink.events] == [1, 2, 3]
        vm.telemetry.close()
        assert sink.closed

    def test_jsonl_round_trip(self, tmp_path, vm, node_class):
        path = str(tmp_path / "events.jsonl")
        vm.telemetry.add_sink(JsonlSink(path))
        _churn(vm, rounds=3)
        vm.telemetry.close()
        rows = JsonlSink.load(path)
        assert len(rows) == 3
        live = [e.as_dict() for e in vm.telemetry.events]
        assert rows == live  # exact round trip through JSON
        assert {"seq", "pause_s", "occupancy_after", "trigger"} <= set(rows[0])

    def test_unused_jsonl_sink_touches_no_file(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = JsonlSink(str(path))
        sink.close()
        assert not path.exists()

    def test_failing_sink_does_not_break_collection(self, vm, node_class):
        class Exploding:
            def emit(self, event):
                raise RuntimeError("exporter down")

            def close(self):
                raise RuntimeError("still down")

        vm.telemetry.add_sink(Exploding())
        _churn(vm, rounds=2)  # collections must survive the bad sink
        assert vm.telemetry.sink_errors == 2
        assert len(vm.telemetry.events) == 2
        vm.telemetry.close()
        assert vm.telemetry.sink_errors == 3


class TestExportFormats:
    def test_summary_is_json_serializable_and_complete(self, vm, node_class):
        build_chain(vm, node_class, 5)
        vm.gc()
        summary = json.loads(json.dumps(vm.telemetry.summary()))
        assert summary["collections"] == {"full": 1}
        assert len(summary["events"]) == 1
        assert summary["pause_seconds"]["count"] == 1
        assert summary["census"]["classes"]["Node"]["counts"] == [5]

    def test_prometheus_exposition_shape(self, vm, node_class):
        build_chain(vm, node_class, 5)
        vm.gc()
        text = render_prometheus(vm.telemetry)
        assert "# TYPE repro_gc_collections_total counter" in text
        assert 'repro_gc_collections_total{collector="marksweep",kind="full"} 1' in text
        assert "# TYPE repro_gc_pause_seconds histogram" in text
        assert 'repro_gc_pause_seconds_bucket{le="+Inf"} 1' in text
        assert 'repro_heap_live_objects{class="Node"} 5' in text
        assert text.endswith("\n")

    def test_render_mentions_pauses_and_census(self, vm, node_class):
        build_chain(vm, node_class, 5)
        vm.gc()
        text = vm.telemetry.render()
        assert "collections: 1" in text
        assert "p99=" in text
        assert "Node" in text

    def test_exposition_conformance(self, vm, node_class):
        build_chain(vm, node_class, 5)
        vm.gc()
        assert validate_exposition(render_prometheus(vm.telemetry)) == []

    def test_exposition_escapes_hostile_class_names(self, vm):
        # Label values carrying the format's three special characters
        # (backslash, double quote, newline) must be escaped, and HELP
        # text must survive too — the conformance checker sees both.
        hostile = vm.define_class(
            'Weird"Cls\\\nX',
            [("next", FieldKind.REF), ("value", FieldKind.INT)],
        )
        build_chain(vm, hostile, 3, root_name="hostile")
        vm.gc()
        text = render_prometheus(vm.telemetry)
        assert validate_exposition(text) == []
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        # The raw specials never appear inside a rendered label value.
        for line in text.splitlines():
            assert "\n" not in line

    def test_validator_flags_format_violations(self):
        assert validate_exposition("") == []
        cases = {
            "no trailing newline": "metric 1",
            "bad escape": 'm{l="a\\q"} 1\n',
            "unquoted label": "m{l=a} 1\n",
            "bad value": "m one\n",
            "unknown type": "# TYPE m flavor\nm 1\n",
            "undeclared family": "# TYPE a counter\na 1\nb 2\n",
            "duplicate type": "# TYPE m counter\n# TYPE m gauge\nm 1\n",
        }
        for label, text in cases.items():
            assert validate_exposition(text), f"{label!r} passed validation"
        # Histogram suffixes bind samples to their declared family.
        ok = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\nh_sum 1.5\nh_count 3\n'
        )
        assert validate_exposition(ok) == []
