"""Retained sizes and "why-alive" queries over a heap snapshot.

The *retained size* of an object is the number of live bytes that would
become unreachable if all of its incoming references were cut — exactly
the bytes the collector would reclaim if the object died.  Over the
dominator tree of :mod:`repro.snapshot.dominators` this is a one-pass
accumulation: every object's retained size is its shallow size plus the
retained sizes of the objects it immediately dominates, because the
dominator subtree under *o* is precisely the set of objects reachable
*only* through *o*.

"Why-alive" composes the two views the paper's reports already use: the
dominator chain (every object that *must* be on every root-to-target
path) rendered through the Figure-1 :class:`~repro.core.reporting.HeapPath`
machinery, plus the target's retained cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.reporting import HeapPath, PathEntry
from repro.snapshot.dominators import SUPER_ROOT, DominatorTree, build_dominator_tree

if TYPE_CHECKING:
    from repro.snapshot.format import HeapSnapshot


def retained_sizes(
    snapshot: "HeapSnapshot", tree: Optional[DominatorTree] = None
) -> dict[int, int]:
    """Retained size (bytes) per reachable object address.

    ``SUPER_ROOT`` maps to the total reachable bytes.  Accumulation walks
    the reverse postorder backwards: an idom always precedes the objects
    it dominates in RPO, so every child is final before its parent adds it.
    """
    if tree is None:
        tree = build_dominator_tree(snapshot)
    objects = snapshot.objects
    retained = {
        addr: (objects[addr].size if addr != SUPER_ROOT else 0)
        for addr in tree.order
    }
    idom = tree.idom
    for addr in reversed(tree.order):
        if addr == SUPER_ROOT:
            continue
        retained[idom[addr]] += retained[addr]
    return retained


def top_retained(
    snapshot: "HeapSnapshot",
    limit: int = 10,
    tree: Optional[DominatorTree] = None,
) -> list[tuple[int, str, int]]:
    """The ``limit`` heaviest objects as ``(addr, type_name, retained_bytes)``,
    retained-descending with address as the deterministic tie-break."""
    if tree is None:
        tree = build_dominator_tree(snapshot)
    retained = retained_sizes(snapshot, tree)
    rows = [
        (addr, snapshot.objects[addr].type_name, nbytes)
        for addr, nbytes in retained.items()
        if addr != SUPER_ROOT
    ]
    rows.sort(key=lambda row: (-row[2], row[0]))
    return rows[:limit]


def retained_set_of_type(snapshot: "HeapSnapshot", type_name: str) -> int:
    """Bytes that die if every instance of ``type_name`` is cut from the
    graph: total reachable bytes minus what stays reachable when traversal
    refuses to enter objects of that type.  This is the per-type analogue
    of the per-object oracle and what "the leak costs N bytes" means for a
    leak candidate whose instances individually retain little."""
    objects = snapshot.objects
    visited: set[int] = set()
    stack = [
        addr
        for addr in snapshot.root_addresses()
        if objects[addr].type_name != type_name
    ]
    while stack:
        addr = stack.pop()
        if addr in visited:
            continue
        visited.add(addr)
        for child in objects[addr].edges:
            if child in visited or child not in objects:
                continue
            if objects[child].type_name == type_name:
                continue
            stack.append(child)
    reachable_total = sum(
        objects[addr].size for addr in _reachable(snapshot)
    )
    surviving = sum(objects[addr].size for addr in visited)
    return reachable_total - surviving


def _reachable(snapshot: "HeapSnapshot") -> set[int]:
    objects = snapshot.objects
    visited: set[int] = set()
    stack = list(snapshot.root_addresses())
    while stack:
        addr = stack.pop()
        if addr in visited:
            continue
        visited.add(addr)
        stack.extend(c for c in objects[addr].edges if c in objects)
    return visited


class WhyAlive:
    """Answer to ``snapshot why <addr>``: dominator chain + retained cost."""

    __slots__ = ("address", "type_name", "retained_bytes", "chain", "path")

    def __init__(
        self,
        address: int,
        type_name: str,
        retained_bytes: int,
        chain: list,
        path: HeapPath,
    ):
        self.address = address
        self.type_name = type_name
        self.retained_bytes = retained_bytes
        #: The dominating :class:`~repro.snapshot.format.ObjectRecord`\ s,
        #: outermost first, ending at the queried object itself.
        self.chain = chain
        self.path = path

    def render(self, show_addresses: bool = True) -> str:
        lines = [
            f"Object: {self.type_name}@{self.address:#x}",
            f"Retained size: {self.retained_bytes} bytes",
            "Dominator chain (every entry is on every path from the roots):",
            self.path.render(show_addresses),
        ]
        return "\n".join(lines)


def why_alive(
    snapshot: "HeapSnapshot",
    addr: int,
    tree: Optional[DominatorTree] = None,
) -> WhyAlive:
    """Explain why ``addr`` is alive: its dominator chain and retained size.

    Raises ``KeyError`` if the address is not reachable in the snapshot.
    """
    if tree is None:
        tree = build_dominator_tree(snapshot)
    chain_addrs = tree.chain(addr)  # KeyError if unreachable
    retained = retained_sizes(snapshot, tree)
    records = [snapshot.objects[a] for a in chain_addrs]
    entries = [PathEntry.from_parts(rec.type_name, rec.addr) for rec in records]
    path = HeapPath.from_entries("(roots)", entries)
    target = snapshot.objects[addr]
    return WhyAlive(addr, target.type_name, retained[addr], records, path)
