#!/usr/bin/env python
"""Quickstart: every GC assertion in ten minutes.

Builds a small managed heap, registers each of the paper's five assertion
kinds, and shows what the collector reports when they pass and when they
fail.  Run:

    python examples/quickstart.py
"""

from repro import FieldKind, VirtualMachine


def banner(title):
    print()
    print("=" * 64)
    print(title)
    print("=" * 64)


def show_violations(vm, since=0):
    lines = vm.assertions.violations.lines[since:]
    if not lines:
        print("  (no violations — assertion satisfied)")
    for line in lines:
        print()
        for row in line.splitlines():
            print("  " + row)
    return len(vm.assertions.violations.lines)


def main():
    # A VM with the paper's configuration: MarkSweep collector, assertion
    # infrastructure (header-bit checks + path-tracking worklist) enabled.
    vm = VirtualMachine(heap_bytes=1 << 20)
    node = vm.define_class("Node", [("next", FieldKind.REF), ("value", FieldKind.INT)])
    seen = 0

    banner("1. assert_dead — 'will this object be reclaimed at the next GC?'")
    with vm.scope():
        head = vm.new(node, value=1)
        tail = vm.new(node, value=2)
        head["next"] = tail
        vm.statics.set_ref("head", head.address)
        # The programmer believes tail is garbage... but head still points at it.
        vm.assertions.assert_dead(tail, site="quickstart.py: after detach")
    vm.gc()
    print("tail was still reachable — the collector reports the full path:")
    seen = show_violations(vm, seen)

    print("\nnow actually detach it and collect again:")
    head["next"] = None
    vm.gc()
    seen = show_violations(vm, seen)
    print(f"  pending assert-dead registrations: {vm.assertions.pending_dead()}")

    banner("2. start_region / assert_alldead — memory-stable code regions")
    vm.assertions.start_region(label="request handler")
    with vm.scope():
        for i in range(3):
            vm.new(node, value=i)  # per-request temporaries
    count = vm.assertions.assert_alldead(site="request done")
    vm.gc()
    print(f"region allocated {count} objects; all died as asserted:")
    seen = show_violations(vm, seen)

    banner("3. assert_instances — singleton checking")
    singleton = vm.define_class("ConnectionPool", [("size", FieldKind.INT)])
    vm.assertions.assert_instances(singleton, 1)
    with vm.scope():
        vm.statics.set_ref("pool", vm.new(singleton).address)
        vm.statics.set_ref("oops", vm.new(singleton).address)  # a second one!
    vm.gc()
    seen = show_violations(vm, seen)

    banner("4. assert_unshared — 'is my tree still a tree?'")
    tree = vm.define_class("Tree", [("left", FieldKind.REF), ("right", FieldKind.REF)])
    with vm.scope():
        root = vm.new(tree)
        shared = vm.new(tree)
        root["left"] = shared
        vm.statics.set_ref("tree", root.address)
        vm.assertions.assert_unshared(shared, site="quickstart: tree node")
    vm.gc()
    print("single parent — fine:")
    seen = show_violations(vm, seen)
    root["right"] = shared  # now the tree is a DAG
    vm.gc()
    print("after adding a second parent:")
    seen = show_violations(vm, seen)

    banner("5. assert_ownedby — 'this element must not outlive its container'")
    container = vm.define_class("Registry", [("items", FieldKind.REF)])
    item = vm.define_class("Session", [("id", FieldKind.INT)])
    with vm.scope():
        registry = vm.new(container)
        items = vm.new_array(item, 4)
        registry["items"] = items
        vm.statics.set_ref("registry", registry.address)
        cache = vm.new_array(item, 4)
        vm.statics.set_ref("cache", cache.address)
        for i in range(4):
            session = vm.new(item, id=i)
            items[i] = session
            cache[i] = session  # also cached — allowed while owned
            vm.assertions.assert_ownedby(registry, session, site="Registry.add")
    vm.gc()
    print("cached AND owned — fine:")
    seen = show_violations(vm, seen)
    items[2] = None  # removed from the registry but still cached: a leak
    vm.gc()
    print("after removing session 2 from the registry (cache still holds it):")
    seen = show_violations(vm, seen)

    banner("Summary")
    print(f"  GCs run:              {vm.stats.collections}")
    print(f"  objects traced:       {vm.stats.objects_traced}")
    print(f"  header-bit checks:    {vm.stats.header_bit_checks}")
    print(f"  violations reported:  {len(vm.assertions.violations)}")
    print(f"  assertion calls:      {vm.assertions.call_counts()}")


if __name__ == "__main__":
    main()
