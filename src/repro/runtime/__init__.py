"""Managed runtime: class registry, threads/roots, handles, VM facade."""

from repro.runtime.classes import ClassRegistry
from repro.runtime.handles import Handle, HandleScope
from repro.runtime.scheduler import Scheduler, Task
from repro.runtime.threads import Frame, MutatorThread, StaticRoots
from repro.runtime.vm import VirtualMachine

__all__ = [
    "ClassRegistry",
    "Handle",
    "HandleScope",
    "Scheduler",
    "Task",
    "Frame",
    "MutatorThread",
    "StaticRoots",
    "VirtualMachine",
]
