"""AST → bytecode compiler for MiniJ.

The compiler also *loads* class declarations into the VM's class registry,
translating MiniJ field types into heap field kinds (class and array types
become traced ``REF`` slots; ``int``/``bool``/``str``/``float`` become
scalar slots) — this is where a MiniJ program's heap shape is fixed.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MiniJCompileError
from repro.heap.object_model import FieldKind
from repro.interp import ast_nodes as ast
from repro.interp.bytecode import Function, Instr, Op

_SCALAR_KINDS = {
    "int": FieldKind.INT,
    "bool": FieldKind.BOOL,
    "str": FieldKind.STR,
    "float": FieldKind.FLOAT,
}


def field_kind_for(type_: ast.TypeRef) -> FieldKind:
    """Heap field kind for a MiniJ type annotation."""
    if type_.name == "void":
        raise MiniJCompileError("'void' is only valid as a return type")
    if type_.weak:
        if type_.array_depth == 0 and type_.name in _SCALAR_KINDS:
            raise MiniJCompileError(f"'weak' needs a reference type, got {type_.name!r}")
        return FieldKind.WEAK
    if type_.array_depth > 0:
        return FieldKind.REF
    return _SCALAR_KINDS.get(type_.name, FieldKind.REF)


class CompiledProgram:
    """Everything the interpreter needs to run a MiniJ program."""

    def __init__(self) -> None:
        self.functions: dict[str, Function] = {}
        #: class name -> {method name -> Function}
        self.methods: dict[str, dict[str, Function]] = {}
        #: class name -> superclass name (None for roots).
        self.supers: dict[str, Optional[str]] = {}
        self.class_names: list[str] = []

    def resolve_method(self, class_name: str, method: str) -> Optional[Function]:
        """Dynamic dispatch: walk the superclass chain."""
        cls: Optional[str] = class_name
        while cls is not None:
            fn = self.methods.get(cls, {}).get(method)
            if fn is not None:
                return fn
            cls = self.supers.get(cls)
        return None


class _FunctionCompiler:
    """Compiles a single function/method body."""

    def __init__(self, decl: ast.FuncDecl):
        self.decl = decl
        self.code: list[Instr] = []
        self.locals: dict[str, int] = {}
        self.local_names: list[str] = []
        #: Stack of active loops: each holds the jump indices to patch for
        #: break (loop end) and continue (condition / update clause).
        self._loops: list[dict] = []
        if decl.owner is not None:
            self._declare("this", decl.line)
        for param in decl.params:
            self._declare(param.name, decl.line)

    def _declare(self, name: str, line: int) -> int:
        if name in self.locals:
            raise MiniJCompileError(
                f"duplicate variable {name!r} in {self.decl.name} (line {line})"
            )
        slot = len(self.locals)
        self.locals[name] = slot
        self.local_names.append(name)
        return slot

    def _emit(self, op: Op, a=None, b=None, line: int = 0) -> int:
        self.code.append(Instr(op, a, b, line))
        return len(self.code) - 1

    # -- entry ------------------------------------------------------------------

    def compile(self) -> Function:
        for stmt in self.decl.body:
            self._stmt(stmt)
        # Implicit return (void functions may fall off the end).
        self._emit(Op.PUSH_NULL, line=self.decl.line)
        self._emit(Op.RETURN, line=self.decl.line)
        return Function(
            name=self.decl.name,
            owner=self.decl.owner,
            params=[p.name for p in self.decl.params],
            n_locals=len(self.locals),
            code=self.code,
            return_is_void=(self.decl.return_type.name == "void"
                            and self.decl.return_type.array_depth == 0),
            local_names=self.local_names,
        )

    # -- statements ---------------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            slot = self._declare(stmt.name, stmt.line)
            if stmt.init is not None:
                self._expr(stmt.init)
            elif field_kind_for(stmt.type).is_reference:
                self._emit(Op.PUSH_NULL, line=stmt.line)
            else:
                self._emit(Op.PUSH_CONST, field_kind_for(stmt.type).default(), line=stmt.line)
            self._emit(Op.STORE, slot, line=stmt.line)
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr)
            self._emit(Op.POP, line=stmt.line)
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.Break):
            if not self._loops:
                raise MiniJCompileError(f"'break' outside a loop (line {stmt.line})")
            self._loops[-1]["breaks"].append(self._emit(Op.JUMP, line=stmt.line))
        elif isinstance(stmt, ast.Continue):
            if not self._loops:
                raise MiniJCompileError(f"'continue' outside a loop (line {stmt.line})")
            self._loops[-1]["continues"].append(self._emit(Op.JUMP, line=stmt.line))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value)
            else:
                self._emit(Op.PUSH_NULL, line=stmt.line)
            self._emit(Op.RETURN, line=stmt.line)
        else:  # pragma: no cover - parser produces no other statement kinds
            raise MiniJCompileError(f"unknown statement {stmt!r}")

    def _assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.Name):
            slot = self.locals.get(target.ident)
            if slot is None:
                raise MiniJCompileError(
                    f"assignment to undeclared variable {target.ident!r} "
                    f"(line {stmt.line})"
                )
            self._expr(stmt.value)
            self._emit(Op.STORE, slot, line=stmt.line)
        elif isinstance(target, ast.FieldAccess):
            self._expr(target.target)
            self._expr(stmt.value)
            self._emit(Op.PUT_FIELD, target.field, line=stmt.line)
        elif isinstance(target, ast.Index):
            self._expr(target.target)
            self._expr(target.index)
            self._expr(stmt.value)
            self._emit(Op.ASTORE, line=stmt.line)
        else:  # pragma: no cover - parser validates targets
            raise MiniJCompileError(f"bad assignment target {target!r}")

    def _if(self, stmt: ast.If) -> None:
        self._expr(stmt.cond)
        jump_else = self._emit(Op.JUMP_IF_FALSE, line=stmt.line)
        for inner in stmt.then_body:
            self._stmt(inner)
        if stmt.else_body is not None:
            jump_end = self._emit(Op.JUMP, line=stmt.line)
            self.code[jump_else].a = len(self.code)
            for inner in stmt.else_body:
                self._stmt(inner)
            self.code[jump_end].a = len(self.code)
        else:
            self.code[jump_else].a = len(self.code)

    def _while(self, stmt: ast.While) -> None:
        top = len(self.code)
        self._expr(stmt.cond)
        jump_out = self._emit(Op.JUMP_IF_FALSE, line=stmt.line)
        self._loops.append({"breaks": [], "continues": []})
        for inner in stmt.body:
            self._stmt(inner)
        self._emit(Op.JUMP, top, line=stmt.line)
        loop = self._loops.pop()
        end = len(self.code)
        self.code[jump_out].a = end
        for idx in loop["breaks"]:
            self.code[idx].a = end
        for idx in loop["continues"]:
            self.code[idx].a = top

    def _for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self._stmt(stmt.init)
        top = len(self.code)
        jump_out = None
        if stmt.cond is not None:
            self._expr(stmt.cond)
            jump_out = self._emit(Op.JUMP_IF_FALSE, line=stmt.line)
        self._loops.append({"breaks": [], "continues": []})
        for inner in stmt.body:
            self._stmt(inner)
        loop = self._loops.pop()
        update_start = len(self.code)
        if stmt.update is not None:
            self._stmt(stmt.update)
        self._emit(Op.JUMP, top, line=stmt.line)
        end = len(self.code)
        if jump_out is not None:
            self.code[jump_out].a = end
        for idx in loop["breaks"]:
            self.code[idx].a = end
        for idx in loop["continues"]:
            self.code[idx].a = update_start

    # -- expressions ----------------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.IntLit):
            self._emit(Op.PUSH_CONST, expr.value, line=expr.line)
        elif isinstance(expr, ast.FloatLit):
            self._emit(Op.PUSH_CONST, expr.value, line=expr.line)
        elif isinstance(expr, ast.StrLit):
            self._emit(Op.PUSH_CONST, expr.value, line=expr.line)
        elif isinstance(expr, ast.BoolLit):
            self._emit(Op.PUSH_CONST, expr.value, line=expr.line)
        elif isinstance(expr, ast.NullLit):
            self._emit(Op.PUSH_NULL, line=expr.line)
        elif isinstance(expr, ast.ThisExpr):
            if "this" not in self.locals:
                raise MiniJCompileError(f"'this' outside a method (line {expr.line})")
            self._emit(Op.LOAD, self.locals["this"], line=expr.line)
        elif isinstance(expr, ast.Name):
            slot = self.locals.get(expr.ident)
            if slot is None:
                raise MiniJCompileError(
                    f"undeclared variable {expr.ident!r} (line {expr.line})"
                )
            self._emit(Op.LOAD, slot, line=expr.line)
        elif isinstance(expr, ast.FieldAccess):
            self._expr(expr.target)
            self._emit(Op.GET_FIELD, expr.field, line=expr.line)
        elif isinstance(expr, ast.Index):
            self._expr(expr.target)
            self._expr(expr.index)
            self._emit(Op.ALOAD, line=expr.line)
        elif isinstance(expr, ast.Call):
            for arg in expr.args:
                self._expr(arg)
            self._emit(Op.CALL, expr.func, len(expr.args), line=expr.line)
        elif isinstance(expr, ast.MethodCall):
            self._expr(expr.target)
            for arg in expr.args:
                self._expr(arg)
            self._emit(Op.CALL_METHOD, expr.method, len(expr.args), line=expr.line)
        elif isinstance(expr, ast.NewObject):
            self._emit(Op.NEW_OBJECT, expr.type_name, line=expr.line)
        elif isinstance(expr, ast.NewArray):
            self._expr(expr.length)
            self._emit(Op.NEW_ARRAY, expr.elem_type, line=expr.line)
        elif isinstance(expr, ast.Binary):
            if expr.op in ("&&", "||"):
                self._short_circuit(expr)
            else:
                self._expr(expr.left)
                self._expr(expr.right)
                self._emit(Op.BINARY, expr.op, line=expr.line)
        elif isinstance(expr, ast.Unary):
            self._expr(expr.operand)
            self._emit(Op.UNARY, expr.op, line=expr.line)
        else:  # pragma: no cover - parser produces no other expression kinds
            raise MiniJCompileError(f"unknown expression {expr!r}")

    def _short_circuit(self, expr: ast.Binary) -> None:
        self._expr(expr.left)
        self._emit(Op.DUP, line=expr.line)
        if expr.op == "&&":
            jump = self._emit(Op.JUMP_IF_FALSE, line=expr.line)
            self._emit(Op.POP, line=expr.line)
            self._expr(expr.right)
            self.code[jump].a = len(self.code)
        else:  # ||
            # Invert: jump past the right operand when left is true.
            self._emit(Op.UNARY, "!", line=expr.line)
            jump = self._emit(Op.JUMP_IF_FALSE, line=expr.line)
            self._emit(Op.POP, line=expr.line)
            self._expr(expr.right)
            self.code[jump].a = len(self.code)


def compile_program(program: ast.Program, vm) -> CompiledProgram:
    """Load classes into ``vm`` and compile every function and method."""
    compiled = CompiledProgram()

    # Define classes first (two passes: declarations may reference each other;
    # a superclass must be defined before its subclasses).
    pending = list(program.classes)
    defined: set[str] = set()
    progress = True
    while pending and progress:
        progress = False
        remaining: list[ast.ClassDecl] = []
        for decl in pending:
            if decl.superclass is not None and decl.superclass not in defined:
                if decl.superclass not in {c.name for c in program.classes}:
                    raise MiniJCompileError(
                        f"class {decl.name!r} extends unknown class {decl.superclass!r}"
                    )
                remaining.append(decl)
                continue
            fields = [(f.name, field_kind_for(f.type)) for f in decl.fields]
            vm.define_class(decl.name, fields, superclass=decl.superclass)
            compiled.supers[decl.name] = decl.superclass
            compiled.class_names.append(decl.name)
            defined.add(decl.name)
            progress = True
        pending = remaining
    if pending:
        names = ", ".join(sorted(c.name for c in pending))
        raise MiniJCompileError(f"inheritance cycle involving: {names}")

    for decl in program.classes:
        table: dict[str, Function] = {}
        for method in decl.methods:
            table[method.name] = _FunctionCompiler(method).compile()
        compiled.methods[decl.name] = table

    for func in program.functions:
        if func.name in compiled.functions:
            raise MiniJCompileError(f"duplicate function {func.name!r}")
        compiled.functions[func.name] = _FunctionCompiler(func).compile()

    return compiled
