"""Collector statistics: timers and deterministic work counters.

The paper evaluates overhead as wall-clock time (total, mutator, GC) on a
Pentium-M.  A Python simulator's wall clock is noisy at the single-digit-%
level the paper reports, so alongside the timers we keep *work counters*
(objects traced, header-bit checks, binary-search probes, …) that decompose
the overhead deterministically.  Benchmarks report both.
"""

from __future__ import annotations

import time
from typing import Optional


class GcStats:
    """Counters and timers accumulated across a VM's lifetime.

    ``TIMER_FIELDS`` are float seconds, everything else is an integer work
    counter; :meth:`snapshot` keeps the two groups apart so consumers never
    have to guess a field's unit from its name.
    """

    __slots__ = (
        "collections",
        "full_collections",
        "minor_collections",
        "gc_seconds",
        "ownership_phase_seconds",
        "mark_seconds",
        "sweep_seconds",
        "lazy_sweep_seconds",
        "objects_traced",
        "edges_traced",
        "objects_swept",
        "objects_freed",
        "bytes_freed",
        "chunks_swept",
        "alloc_fast_hits",
        "objects_promoted",
        "header_bit_checks",
        "instance_count_increments",
        "ownee_lookups",
        "ownee_search_probes",
        "ownees_checked",
        "path_entries_tagged",
        "assertion_checks",
        "violations_detected",
        "naive_ownership_visits",
        "weak_refs_cleared",
    )

    #: Float wall-clock accumulators (seconds).  ``lazy_sweep_seconds`` is
    #: the subset of sweep work done outside a GC pause, on the allocation
    #: slow path; it is *also* included in ``sweep_seconds`` so eager and
    #: lazy runs stay comparable on total sweep time.
    TIMER_FIELDS = (
        "gc_seconds",
        "ownership_phase_seconds",
        "mark_seconds",
        "sweep_seconds",
        "lazy_sweep_seconds",
    )

    #: Deterministic integer work counters (everything that isn't a timer).
    # (TIMER_FIELDS can't be referenced inside a class-body genexp, so the
    # timer names are repeated literally; the consistency test pins them.)
    COUNTER_FIELDS = tuple(
        f
        for f in __slots__
        if f
        not in (
            "gc_seconds",
            "ownership_phase_seconds",
            "mark_seconds",
            "sweep_seconds",
            "lazy_sweep_seconds",
        )
    )

    def __init__(self) -> None:
        for field in self.COUNTER_FIELDS:
            setattr(self, field, 0)
        for field in self.TIMER_FIELDS:
            setattr(self, field, 0.0)

    def snapshot(self) -> dict:
        """Typed snapshot: ``{"counters": {name: int}, "timers": {name: float}}``."""
        return {
            "counters": {f: getattr(self, f) for f in self.COUNTER_FIELDS},
            "timers": {f: getattr(self, f) for f in self.TIMER_FIELDS},
        }

    def copy(self) -> "GcStats":
        out = GcStats()
        for field in self.__slots__:
            setattr(out, field, getattr(self, field))
        return out

    def merged_with(self, other: "GcStats") -> "GcStats":
        out = GcStats()
        for field in self.__slots__:
            setattr(out, field, getattr(self, field) + getattr(other, field))
        return out

    def merge(self, *others: "GcStats") -> "GcStats":
        """Combine per-zone/per-worker partials of one pause.

        Unlike :meth:`merged_with` (which concatenates *disjoint* run
        windows and therefore sums everything), ``merge`` combines partials
        that observed the *same* wall-clock pause: work counters sum —
        every partial did distinct work — but timers take the elementwise
        maximum, because N workers inside one pause still cost one pause,
        not N.  Parallel-mark partials carry zero timers (the pause is
        timed once by the enclosing ``PhaseTimer``), so merging them can
        never inflate pause time.
        """
        out = self.copy()
        for other in others:
            for field in self.COUNTER_FIELDS:
                setattr(out, field, getattr(out, field) + getattr(other, field))
            for field in self.TIMER_FIELDS:
                mine = getattr(out, field)
                theirs = getattr(other, field)
                if theirs > mine:
                    setattr(out, field, theirs)
        return out

    def diff(self, other: "GcStats") -> "GcStats":
        """Per-window delta ``self - other`` (``other`` is the earlier
        snapshot); the telemetry layer uses this to attribute work and time
        to a single collection."""
        out = GcStats()
        for field in self.__slots__:
            setattr(out, field, getattr(self, field) - getattr(other, field))
        return out

    def __repr__(self) -> str:
        return (
            f"<GcStats collections={self.collections} "
            f"gc={self.gc_seconds:.4f}s traced={self.objects_traced}>"
        )


class RecoveryStats:
    """Counters for the hardened recovery paths (quarantine, degradation, OOM).

    Kept separate from :class:`GcStats` on purpose: GcStats counters are
    gated bit-identical across benchmark modes, while recovery counters only
    move when something actually went wrong (or was injected).
    """

    __slots__ = (
        "heap_degradations",
        "engine_degradations",
        "objects_quarantined",
        "refs_fenced",
        "cells_fenced",
        "stale_bits_cleared",
        "oom_recoveries",
        "heap_growths",
        "snapshot_failures",
        "snapshots_dropped",
    )

    def __init__(self) -> None:
        for field in self.__slots__:
            setattr(self, field, 0)

    def snapshot(self) -> dict:
        return {f: getattr(self, f) for f in self.__slots__}

    def total(self) -> int:
        return sum(getattr(self, f) for f in self.__slots__)

    def __repr__(self) -> str:
        return (
            f"<RecoveryStats heap_degradations={self.heap_degradations} "
            f"engine_degradations={self.engine_degradations} "
            f"oom_recoveries={self.oom_recoveries}>"
        )


class PhaseTimer:
    """Context manager accumulating elapsed seconds into a stats attribute.

    When a span recorder is attached (``spans``/``name``), the *same two*
    ``perf_counter`` readings that bound the accumulated interval are handed
    to ``spans.begin``/``spans.end`` as the span's timestamps.  That is the
    unification guarantee of the tracing subsystem: a phase's span durations
    sum to its ``GcStats`` timer with exact float equality — the two views
    are one measurement, so they can never disagree.  ``spans=None`` (every
    call site when tracing is off) costs two ``is None`` tests.
    """

    __slots__ = ("stats", "attr", "spans", "name", "elapsed", "_start")

    def __init__(self, stats: GcStats, attr: str, spans=None, name: Optional[str] = None):
        self.stats = stats
        self.attr = attr
        self.spans = spans
        self.name = name
        #: Last completed interval (lazy-sweep telemetry reads this).
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "PhaseTimer":
        self._start = start = time.perf_counter()
        if self.spans is not None:
            self.spans.begin(self.name, ts=start)
        return self

    def __exit__(self, *exc) -> None:
        end = time.perf_counter()
        self.elapsed = elapsed = end - self._start
        setattr(self.stats, self.attr, getattr(self.stats, self.attr) + elapsed)
        if self.spans is not None:
            self.spans.end(ts=end)
