#!/usr/bin/env python
"""GC assertions from *inside* a program: the MiniJ language demo.

MiniJ is the small class-based language bundled with this reproduction; its
interpreter runs on the managed runtime, its frames are GC roots, and the
paper's assertion interface is exposed as builtins.  This demo writes the
leaky-cache bug in MiniJ and lets the collector find it.  Run:

    python examples/minij_demo.py
"""

from repro import VirtualMachine
from repro.interp import Interpreter

PROGRAM = """
class Session {
  var id: int;
}

class Registry {
  var sessions: Session[];
  var count: int;

  def add(s: Session): void {
    this.sessions[this.count] = s;
    this.count = this.count + 1;
    gcAssertOwnedBy(this, s);      // every session is owned by the registry
  }

  def evict(i: int): Session {
    var s: Session = this.sessions[i];
    this.sessions[i] = null;       // remove from the registry...
    return s;
  }
}

class Cache {
  var recent: Session;             // ...but the cache still remembers it
}

def main(): void {
  var registry: Registry = new Registry();
  registry.sessions = new Session[8];
  registry.count = 0;
  var cache: Cache = new Cache();

  var i: int = 0;
  while (i < 8) {
    var s: Session = new Session();
    s.id = i;
    registry.add(s);
    i = i + 1;
  }

  gc();
  print("violations after clean setup: " + str(violations()));

  // The bug: evict a session from the registry but cache it forever.
  cache.recent = registry.evict(3);
  gc();
  print("violations after leaky evict: " + str(violations()));

  // The fix: drop the cache entry too; the session dies at the next GC.
  cache.recent = null;
  gc();
  print("live objects now: " + str(heapLive()));
}
"""


def main():
    vm = VirtualMachine(heap_bytes=1 << 20)
    interp = Interpreter(vm, echo=True)
    interp.load(PROGRAM)
    print("--- MiniJ program output " + "-" * 40)
    interp.run("main")
    print("-" * 65)
    print()
    print("Collector-side report for the leaky evict:")
    print()
    for line in vm.engine.log.lines:
        for row in line.splitlines():
            print("  " + row)
        print()
    print(f"GC stats: {vm.stats.collections} collections, "
          f"{vm.stats.objects_traced} objects traced, "
          f"{vm.stats.header_bit_checks} header-bit checks")


if __name__ == "__main__":
    main()
