"""MiniJ lexer tests."""

import pytest

from repro.errors import MiniJSyntaxError
from repro.interp.lexer import TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


class TestBasics:
    def test_empty_source_yields_eof(self):
        assert kinds("") == [TokenKind.EOF]

    def test_int_literal(self):
        tokens = tokenize("42")
        assert tokens[0].kind is TokenKind.INT
        assert tokens[0].value == 42

    def test_float_literal(self):
        tokens = tokenize("3.25")
        assert tokens[0].kind is TokenKind.FLOAT
        assert tokens[0].value == 3.25

    def test_int_dot_not_float_without_digits(self):
        assert kinds("3.x")[:3] == [TokenKind.INT, TokenKind.DOT, TokenKind.IDENT]

    def test_string_literal_with_escapes(self):
        tokens = tokenize(r'"a\n\"b\\"')
        assert tokens[0].value == 'a\n"b\\'

    def test_unterminated_string(self):
        with pytest.raises(MiniJSyntaxError):
            tokenize('"abc')

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("class classy")
        assert tokens[0].kind is TokenKind.CLASS
        assert tokens[1].kind is TokenKind.IDENT
        assert tokens[1].value == "classy"

    def test_booleans_and_null(self):
        assert kinds("true false null")[:3] == [
            TokenKind.TRUE,
            TokenKind.FALSE,
            TokenKind.NULL,
        ]

    def test_two_char_operators(self):
        assert kinds("== != <= >= && ||")[:6] == [
            TokenKind.EQ,
            TokenKind.NE,
            TokenKind.LE,
            TokenKind.GE,
            TokenKind.AND,
            TokenKind.OR,
        ]

    def test_one_char_operators(self):
        assert kinds("+-*/%<>!=")[:8] == [
            TokenKind.PLUS,
            TokenKind.MINUS,
            TokenKind.STAR,
            TokenKind.SLASH,
            TokenKind.PERCENT,
            TokenKind.LT,
            TokenKind.GT,
            TokenKind.NE,
        ]

    def test_unexpected_character(self):
        with pytest.raises(MiniJSyntaxError):
            tokenize("@")


class TestTrivia:
    def test_line_comment_skipped(self):
        assert kinds("1 // comment\n2")[:2] == [TokenKind.INT, TokenKind.INT]

    def test_block_comment_skipped(self):
        assert kinds("1 /* x\ny */ 2")[:2] == [TokenKind.INT, TokenKind.INT]

    def test_unterminated_block_comment(self):
        with pytest.raises(MiniJSyntaxError):
            tokenize("/* never closed")

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(MiniJSyntaxError) as exc:
            tokenize("ok\n  @")
        assert exc.value.line == 2
