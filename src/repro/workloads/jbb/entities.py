"""SPEC JBB2000 entity model (the heap shape the paper debugs).

The paper describes pseudojbb's heap precisely, and Figure 1 shows it:
``spec.jbb.Company -> Object[] -> spec.jbb.Warehouse -> Object[] ->
spec.jbb.District -> longBTree -> ... -> spec.jbb.Order``.  We reproduce the
same classes (same names, so violation paths read like the paper's), the
factory pattern with ``destroy()`` methods, and the three bugs §3.2.1 finds:

* **lastOrder leak** — "each Customer object maintains a reference to the
  last Order this Customer placed.  When the Order is destroyed, the
  lastOrder field in the associated Customer is not cleared."
* **Address leak** — Addresses are also pointed to by Customers and cannot
  be repaired because "there is no back reference from Addresses to
  Customers."
* **orderTable leak** (Jump & McKinley) — Orders "are completed during a
  DeliveryTransaction but are not removed from the table."

Plus the **oldCompany drag**: the previous iteration's Company stays
reachable from a local variable for the whole main loop.
"""

from __future__ import annotations

from repro.heap.object_model import FieldKind
from repro.runtime.handles import Handle
from repro.runtime.vm import VirtualMachine
from repro.workloads.jbb.btree import LongBTree

COMPANY = "spec.jbb.Company"
WAREHOUSE = "spec.jbb.Warehouse"
DISTRICT = "spec.jbb.District"
CUSTOMER = "spec.jbb.Customer"
ADDRESS = "spec.jbb.Address"
ORDER = "spec.jbb.Order"
ORDERLINE = "spec.jbb.Orderline"

#: Order status codes (spec.jbb uses process states on its entities).
STATUS_NEW = 0
STATUS_PROCESSED = 1
STATUS_DESTROYED = 2


def define_jbb_classes(vm: VirtualMachine) -> None:
    """Load the spec.jbb entity classes into a VM (idempotent)."""
    if vm.classes.maybe(COMPANY) is not None:
        return
    vm.define_class(
        COMPANY,
        [("warehouses", FieldKind.REF), ("name", FieldKind.STR), ("destroyed", FieldKind.BOOL)],
    )
    vm.define_class(
        WAREHOUSE,
        [("id", FieldKind.INT), ("districts", FieldKind.REF), ("company", FieldKind.REF)],
    )
    vm.define_class(
        DISTRICT,
        [
            ("id", FieldKind.INT),
            ("warehouse", FieldKind.REF),
            ("orderTable", FieldKind.REF),
            ("customers", FieldKind.REF),
            ("nextOrderId", FieldKind.INT),
        ],
    )
    vm.define_class(
        CUSTOMER,
        [
            ("id", FieldKind.INT),
            ("name", FieldKind.STR),
            ("lastOrder", FieldKind.REF),
            ("address", FieldKind.REF),
            ("balance", FieldKind.FLOAT),
        ],
    )
    vm.define_class(ADDRESS, [("street", FieldKind.STR), ("city", FieldKind.STR)])
    vm.define_class(
        ORDER,
        [
            ("id", FieldKind.INT),
            ("customer", FieldKind.REF),
            ("lines", FieldKind.REF),
            ("status", FieldKind.INT),
            ("total", FieldKind.FLOAT),
        ],
    )
    vm.define_class(ORDERLINE, [("item", FieldKind.INT), ("qty", FieldKind.INT), ("amount", FieldKind.FLOAT)])


def build_company(
    vm: VirtualMachine,
    warehouses: int,
    districts_per_warehouse: int,
    customers_per_district: int,
    name: str = "SPECjbb",
    btree_degree: int = 4,
) -> Handle:
    """Construct the full Company object graph (Figure 1's spine)."""
    define_jbb_classes(vm)
    with vm.scope("build_company"):
        company = _build_company_graph(
            vm, warehouses, districts_per_warehouse, customers_per_district, name, btree_degree
        )
    return company


def _build_company_graph(
    vm: VirtualMachine,
    warehouses: int,
    districts_per_warehouse: int,
    customers_per_district: int,
    name: str,
    btree_degree: int,
) -> Handle:
    company = vm.new(COMPANY, name=name, destroyed=False)
    warehouse_array = vm.new_array(vm.classes.get(WAREHOUSE), warehouses)
    company["warehouses"] = warehouse_array
    for w in range(warehouses):
        warehouse = vm.new(WAREHOUSE, id=w)
        warehouse["company"] = company
        warehouse_array[w] = warehouse
        district_array = vm.new_array(vm.classes.get(DISTRICT), districts_per_warehouse)
        warehouse["districts"] = district_array
        for d in range(districts_per_warehouse):
            district = vm.new(DISTRICT, id=w * districts_per_warehouse + d, nextOrderId=1)
            district["warehouse"] = warehouse
            district_array[d] = district
            district["orderTable"] = LongBTree.new(vm, degree=btree_degree).handle
            customer_array = vm.new_array(vm.classes.get(CUSTOMER), customers_per_district)
            district["customers"] = customer_array
            for c in range(customers_per_district):
                customer = vm.new(
                    CUSTOMER,
                    id=c,
                    name=f"customer-{w}-{d}-{c}",
                    balance=0.0,
                )
                customer["address"] = vm.new(
                    ADDRESS, street=f"{c} Main St", city=f"city-{d}"
                )
                customer_array[c] = customer
    return company


def districts_of(company: Handle) -> list[Handle]:
    """All districts of a company, warehouse-major order."""
    out: list[Handle] = []
    warehouses = company["warehouses"]
    for w in range(len(warehouses)):
        districts = warehouses[w]["districts"]
        for d in range(len(districts)):
            out.append(districts[d])
    return out


def order_table_of(district: Handle) -> LongBTree:
    return LongBTree.wrap(district.vm, district["orderTable"])


def new_order(
    vm: VirtualMachine,
    district: Handle,
    customer: Handle,
    n_lines: int,
) -> Handle:
    """Create an Order with its Orderline array (not yet in the table)."""
    order_id = district["nextOrderId"]
    district["nextOrderId"] = order_id + 1
    with vm.scope("new_order"):
        order = vm.new(ORDER, id=order_id, status=STATUS_NEW, total=0.0)
        order["customer"] = customer
        lines = vm.new_array(vm.classes.get(ORDERLINE), n_lines)
        order["lines"] = lines
        total = 0.0
        for i in range(n_lines):
            amount = float((order_id + i) % 97) + 0.5
            lines[i] = vm.new(
                ORDERLINE, item=(order_id * 7 + i) % 1000, qty=1 + i % 5, amount=amount
            )
            total += amount
        order["total"] = total
    return order


def process_order(order: Handle) -> float:
    """DeliveryTransaction's per-order work: total the order lines."""
    lines = order["lines"]
    total = 0.0
    for i in range(len(lines)):
        line = lines[i]
        total += line["amount"] * line["qty"]
    order["status"] = STATUS_PROCESSED
    order["total"] = total
    return total


def destroy_order(order: Handle, clear_last_order: bool) -> None:
    """The Entity.destroy() idiom the paper instruments (§3.2.1).

    With ``clear_last_order=False`` this reproduces the paper's bug: the
    Customer's ``lastOrder`` field keeps the destroyed Order reachable.
    The repair is exactly the paper's: "setting the reference in the
    Customer to null when the Order is destroyed" (possible because each
    Order has a back reference to its Customer).
    """
    order["status"] = STATUS_DESTROYED
    if clear_last_order:
        customer = order["customer"]
        if customer is not None:
            last = customer["lastOrder"]
            if last is not None and last == order:
                customer["lastOrder"] = None
    order["customer"] = None
