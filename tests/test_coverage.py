"""The fault → invariant coverage matrix, unit-tested off the soak path.

The chaos runner exercises :mod:`repro.verify.coverage` end-to-end (and CI
greps its rendered table); these tests pin the pieces in isolation — the
catalog's key agreement with the injector, each detector's evidence rules
on synthetic cell results, and the matrix's gate/render behaviour.
"""

from __future__ import annotations

from repro.faults import FAULT_KINDS
from repro.faults.chaos import CellResult
from repro.verify import (
    FAULT_INVARIANTS,
    CoverageMatrix,
    detect_cell,
    detect_tenant_cell,
)


def _cell(**overrides) -> CellResult:
    result = CellResult(collector="marksweep", sweep_mode="eager",
                        workload="synthetic", seed=0)
    for name, value in overrides.items():
        setattr(result, name, value)
    return result


# -- the catalog ------------------------------------------------------------------------


def test_catalog_covers_exactly_the_injectors_fault_kinds():
    # coverage.py cannot import repro.faults (chaos.py imports coverage.py);
    # this test is the promised key-agreement check.
    assert set(FAULT_INVARIANTS) == set(FAULT_KINDS)


def test_every_catalog_entry_names_an_invariant_and_evidence():
    for kind, (invariant, how) in FAULT_INVARIANTS.items():
        assert invariant and " " not in invariant, (kind, invariant)
        assert how


# -- detect_cell evidence rules ---------------------------------------------------------


def test_header_faults_detected_via_sentinel_or_walker():
    by_counter = detect_cell(_cell(recovery={"stale_bits_cleared": 2}), [], 0)
    assert "flip-mark" in by_counter and "2 stale bit(s)" in by_counter["flip-mark"]

    by_probe = detect_cell(
        _cell(), ["paranoid: <obj> carries an OWNED bit without the OWNEE bit"], 0
    )
    assert "flip-mark" in by_probe and "walker flagged" in by_probe["flip-mark"]


def test_injected_violation_discriminators_map_to_assert_verdicts():
    found = detect_cell(
        _cell(injected_dead_violations=3, injected_unshared_violations=1), [], 0
    )
    assert "3 site=None DEAD" in found["flip-dead"]
    assert "1 site=None UNSHARED" in found["flip-unshared"]


def test_dangling_reference_detected_via_fence_counter_or_probe():
    assert "dangle-ref" in detect_cell(_cell(recovery={"refs_fenced": 1}), [], 0)
    assert "dangle-ref" in detect_cell(_cell(), ["x: dangling reference 0xdead0"], 0)


def test_freelist_corruption_prefers_walker_evidence_over_fence_counter():
    probe = ["space: free cell 0x40 (32B) aliases a live object"]
    by_probe = detect_cell(_cell(recovery={"cells_fenced": 5}), probe, 0)
    assert "walker flagged" in by_probe["corrupt-freelist"]

    by_fence = detect_cell(_cell(recovery={"cells_fenced": 5}), [], 0)
    assert "fenced 5" in by_fence["corrupt-freelist"]


def test_alloc_fail_counts_only_when_the_armed_refusal_was_consumed():
    applied = _cell(kinds_applied={"alloc-fail"}, recovery={"oom_recoveries": 1})
    assert "alloc-fail" in detect_cell(applied, [], 0)
    # A refusal still pending means the ladder never absorbed it: no evidence.
    assert "alloc-fail" not in detect_cell(applied, [], 1)


def test_containment_counters_map_to_their_invariants():
    found = detect_cell(
        _cell(
            recovery={"engine_degradations": 1, "snapshot_failures": 2},
            sink_errors=4,
        ),
        [],
        0,
    )
    assert "engine-containment" in found["raise-reaction"]
    assert "4 sink error(s)" in found["raise-sink"]
    assert "2 capture failure(s)" in found["raise-snapshot"]


def test_clean_cell_produces_no_evidence():
    assert detect_cell(_cell(), [], 0) == {}


def test_tenant_cell_detects_session_faults():
    class Victim:
        connection_dropped = True
        outcome = "killed"

    found = detect_tenant_cell(None, Victim())
    assert "conn-drop" in found and "session-kill" in found

    class Bystander:
        connection_dropped = False
        outcome = "completed"

    assert detect_tenant_cell(None, Bystander()) == {}


# -- the matrix gate --------------------------------------------------------------------


def test_matrix_gates_on_full_coverage():
    matrix = CoverageMatrix()
    assert not matrix.ok
    assert set(matrix.missing()) == set(FAULT_INVARIANTS)

    for kind in FAULT_INVARIANTS:
        matrix.add(kind, "cell-a", "evidence")
    assert matrix.ok
    assert matrix.missing() == []


def test_merge_cell_folds_detections_under_the_cell_label():
    matrix = CoverageMatrix()
    matrix.merge_cell("marksweep x synthetic", {"flip-mark": "cleared 1 bit"})
    assert matrix.covered("flip-mark")
    assert matrix.evidence["flip-mark"] == ["marksweep x synthetic: cleared 1 bit"]


def test_render_shows_coverage_and_calls_out_gaps():
    matrix = CoverageMatrix()
    for kind in FAULT_INVARIANTS:
        if kind != "session-kill":
            matrix.add(kind, "cell", "seen")
    text = matrix.render()
    assert "covered x1" in text
    assert "NOT COVERED" in text
    assert "UNCOVERED fault kind(s): session-kill" in text

    matrix.add("session-kill", "cell", "seen")
    full = matrix.render()
    assert f"all {len(FAULT_INVARIANTS)} fault kinds caught by a named invariant" in full
    assert "NOT COVERED" not in full
