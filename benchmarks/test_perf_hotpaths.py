"""Hot-path perf gate: trace loop, allocation fast path, lazy sweep pauses.

Regenerates ``BENCH_perf.json`` (the committed perf record, schema
``repro-bench-perf/1``) and checks the claims behind the hot-path overhaul:

* the specialized fused drain traces edges faster than the generic
  per-edge loop, over the *same* heap with *identical* work counters;
* the run-cache fast path serves the vast majority of small allocations;
* lazy sweeping ends the pause at mark end, so pauses shrink while the
  reclaimed set stays exactly the same.

Timing thresholds are deliberately lenient (CI machines are noisy); the
counter-identity assertions are exact — those are the correctness gate.
"""

from __future__ import annotations

from benchmarks.conftest import full_scale
from repro.bench import (
    bench_alloc,
    bench_par_mark,
    bench_pauses,
    bench_trace,
    dump_perf,
    perf_payload,
)


def test_trace_specialization_speedup(once):
    result = once(bench_trace, n_nodes=8_000, trials=3)
    assert result["counters_match"], "drain variants disagree on work done"
    assert result["generic"]["edges_traced"] > 0
    # Lenient floor; the committed BENCH_perf.json records the real ratio.
    assert result["speedup"] > 1.05
    # The cheap path API saw real depths during the instrumented pass.
    assert result["path_probe"]["max_depth"] > 0


def test_alloc_fast_path_hit_rate(once):
    result = once(bench_alloc, n_allocs=20_000, trials=2)
    # Small-object allocation should be served by the run cache almost
    # always (one refill per RUN_CACHE_CELLS allocations).
    assert result["fast_hit_rate"] > 0.9
    assert result["cached"]["alloc_fast_hits"] > 0


def test_lazy_sweep_shrinks_pauses_with_identical_work(once):
    results = once(bench_pauses, ("pseudojbb",))
    row = results["pseudojbb"]
    assert row["counters_match"], "eager and lazy reclaimed different sets"
    # Mark-only pauses must not exceed mark+sweep pauses; allow slack for
    # timer noise on sub-millisecond pauses.
    assert row["pause_p99_ratio"] < 1.1
    # The sweep work did not vanish — it moved out of the pause.
    assert row["lazy"]["lazy_sweep_seconds"] > 0


def test_parallel_mark_scaling_curve(once):
    result = once(bench_par_mark)
    assert result["counters_match"], "parallel marking changed what was traced"
    curve = result["curve"]
    sequential = result["sequential"]["counters"]
    for workers, leg in curve.items():
        assert leg["counters"] == sequential, f"workers={workers} drifted"
    # The deterministic bound must scale with worker count; measured
    # wall-clock speedup is recorded but never gated here (GIL, 1-core CI).
    assert curve["2"]["zone_balance_speedup"] > 1.0
    assert curve["4"]["zone_balance_speedup"] >= curve["2"]["zone_balance_speedup"]
    assert result["machine"]["cores"]


def test_regenerate_bench_perf_json(once):
    payload = once(perf_payload, quick=not full_scale())
    assert payload["counters_match"]
    path = dump_perf(payload)
    assert path == "BENCH_perf.json"
