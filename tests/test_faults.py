"""Fault injection and hardened-GC recovery tests.

Covers the robustness surface end to end: the seeded injector itself,
the pre/post-GC sentinel's repairs + quarantine, assertion-engine
degradation (raising hooks, raising reaction handlers, check budgets),
the OOM recovery ladder (emergency GC → growth → HeapExhausted triage),
the telemetry sink circuit breaker, snapshot crash consistency, and a
seeded fuzzer whose surviving object set is checked against a
brute-force reachability oracle on all three collectors × both sweep
modes.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.core.reporting import AssertionKind
from repro.errors import (
    ConfigurationError,
    EngineDegraded,
    HeapCorruption,
    HeapExhausted,
    OutOfMemoryError,
    ReproError,
)
from repro.faults import ExplodingSink, Fault, FaultInjector, FaultPlan, run_chaos
from repro.faults.chaos import run_cell
from repro.gc.verify import run_sentinel, verify_heap
from repro.heap import header as hdr
from repro.heap.layout import NULL
from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine
from repro.snapshot.capture import SnapshotPolicy
from repro.snapshot.format import SnapshotWriter, index_path, load_snapshot
from tests.conftest import ALL_COLLECTORS, build_chain, make_node_class

#: (collector, sweep_mode) cells the heavier tests sweep.
SWEEP_CELLS = [
    ("marksweep", "eager"),
    ("marksweep", "lazy"),
    ("generational", "eager"),
    ("generational", "lazy"),
    ("semispace", None),
]


def hardened_vm(
    collector: str = "marksweep",
    sweep_mode: str | None = None,
    heap_bytes: int = 256 << 10,
    max_heap_bytes: int | None = None,
    **kwargs,
) -> VirtualMachine:
    return VirtualMachine(
        heap_bytes=heap_bytes,
        collector=collector,
        sweep_mode=sweep_mode,
        hardened=True,
        max_heap_bytes=max_heap_bytes,
        **kwargs,
    )


# -- plan / injector mechanics -----------------------------------------------------------


class TestFaultPlan:
    def test_fault_needs_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            Fault("flip-mark")
        with pytest.raises(ValueError):
            Fault("flip-mark", at_gc=1, at_alloc=1)
        with pytest.raises(ValueError):
            Fault("not-a-kind", at_gc=1)

    def test_one_of_each_covers_every_kind(self):
        from repro.faults import FAULT_KINDS

        plan = FaultPlan.one_of_each(seed=5)
        assert plan.kinds() == set(FAULT_KINDS)
        assert plan.seed == 5

    def test_generate_is_seed_deterministic(self):
        a = FaultPlan.generate(seed=9, count=12)
        b = FaultPlan.generate(seed=9, count=12)
        assert [(f.kind, f.at_gc, f.at_alloc) for f in a.faults] == [
            (f.kind, f.at_gc, f.at_alloc) for f in b.faults
        ]
        c = FaultPlan.generate(seed=10, count=12)
        assert [(f.kind, f.at_gc, f.at_alloc) for f in a.faults] != [
            (f.kind, f.at_gc, f.at_alloc) for f in c.faults
        ]


class TestInjectorMechanics:
    def test_attach_detach_restores_allocate(self, vm):
        original = vm.collector.allocate
        injector = FaultInjector(vm, FaultPlan()).attach()
        assert vm.collector.allocate is not original
        injector.detach()
        assert vm.collector.allocate == original

    def test_empty_plan_changes_nothing(self):
        plain = VirtualMachine(heap_bytes=128 << 10)
        armed = VirtualMachine(heap_bytes=128 << 10)
        FaultInjector(armed, FaultPlan()).attach()
        cls_p = make_node_class(plain)
        cls_a = make_node_class(armed)
        build_chain(plain, cls_p, 200)
        build_chain(armed, cls_a, 200)
        plain.gc()
        armed.gc()
        # Timers are wall-clock; the bit-identical contract is on counters.
        assert plain.stats.snapshot()["counters"] == armed.stats.snapshot()["counters"]

    def test_alloc_trigger_fires_at_the_right_count(self, vm):
        plan = FaultPlan().add("alloc-fail", at_alloc=5, arg=1)
        injector = FaultInjector(vm, plan).attach()
        cls = make_node_class(vm)
        build_chain(vm, cls, 4)
        assert injector.applied == []
        build_chain(vm, cls, 1, root_name="second")
        assert injector.kinds_applied() == {"alloc-fail"}

    def test_same_seed_same_schedule(self):
        def run(seed):
            vm = hardened_vm()
            injector = FaultInjector(vm, FaultPlan.one_of_each(seed)).attach()
            cls = make_node_class(vm)
            for round_no in range(4):
                build_chain(vm, cls, 120, root_name=f"r{round_no}")
                vm.gc(f"round {round_no}")
            return list(injector.applied)

        assert run(21) == run(21)
        assert run(21) != run(22)


# -- sentinel repairs + quarantine -------------------------------------------------------


class TestSentinelRepairs:
    def test_stale_mark_bit_cleared_and_counted(self):
        vm = hardened_vm()
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 4)
        nodes[2].obj.set(hdr.MARK_BIT)
        vm.gc("sentinel sweep")
        assert vm.collector.recovery.stale_bits_cleared >= 1
        assert vm.collector.recovery.heap_degradations >= 1
        assert verify_heap(vm) == []

    def test_dangling_slot_nulled(self):
        vm = hardened_vm()
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 3)
        nodes[2].obj.slots[cls.field("next").slot] = 0xBAD000
        vm.gc("repair dangle")
        assert nodes[2].obj.slots[cls.field("next").slot] == NULL
        assert vm.collector.recovery.refs_fenced >= 1
        assert verify_heap(vm) == []

    def test_dangling_root_nulled(self):
        vm = hardened_vm()
        cls = make_node_class(vm)
        build_chain(vm, cls, 2)
        vm.statics.set_ref("ghost", 0xBAD10)
        vm.gc("repair root")
        assert vm.statics.get_ref("ghost") == NULL
        assert verify_heap(vm) == []

    def test_freed_zombie_evicted_and_quarantined(self):
        vm = hardened_vm()
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 3)
        zombie = nodes[2].obj
        nodes[1]["next"] = None
        zombie.status |= hdr.FREED_BIT
        report = run_sentinel(vm, vm.collector.quarantine, phase="test")
        assert report.objects_quarantined == 1
        assert zombie.address in vm.collector.quarantine
        assert vm.heap.maybe(zombie.address) is None
        assert verify_heap(vm) == []

    def test_registry_scrubbed_for_vanished_addresses(self):
        vm = hardened_vm()
        cls = make_node_class(vm)
        build_chain(vm, cls, 2)
        vm.engine.registry.register_dead(0xFE0, "stale", 0)
        report = run_sentinel(vm, vm.collector.quarantine, phase="test")
        assert report.registry_scrubbed == 1
        assert 0xFE0 not in vm.engine.registry.dead_sites

    def test_unhardened_vm_never_runs_the_sentinel(self, vm):
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 2)
        nodes[1].obj.slots[cls.field("next").slot] = 0xBAD000
        # Unhardened tracing hits the dangle head-on: typed heap error.
        with pytest.raises(ReproError):
            vm.gc("no sentinel")


class TestQuarantineAliasedCells:
    def test_duplicate_freelist_push_is_fenced(self):
        vm = hardened_vm(heap_bytes=64 << 10)
        injector = FaultInjector(vm, FaultPlan()).attach()
        cls = make_node_class(vm)
        build_chain(vm, cls, 10)
        detail = injector.apply_now("corrupt-freelist")
        assert "duplicated" in detail
        # Allocate until the poisoned cell cycles back out of the free list.
        build_chain(vm, cls, 400, root_name="pressure")
        assert vm.collector.recovery.cells_fenced >= 1
        assert len(vm.collector.quarantine) >= 1
        vm.gc("after fencing")
        assert verify_heap(vm) == []

    def test_uncommit_repairs_double_charge(self):
        from repro.heap.space import FreeListSpace

        space = FreeListSpace("t", 4096)
        first = space.allocate(16)
        before = space.bytes_in_use
        assert space.commit(first, 16)  # aliased commit: double charge
        space.uncommit(first, 16)
        assert space.bytes_in_use == before


# -- engine degradation ------------------------------------------------------------------


class TestEngineDegradation:
    def _raise_from_hook(self, vm):
        def exploding_hook(*args, **kwargs):
            raise RuntimeError("injected hook failure")

        vm.engine.pre_mark = exploding_hook

    def test_raising_hook_degrades_and_rearms(self):
        vm = hardened_vm()
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 3)
        self._raise_from_hook(vm)
        vm.gc("degraded collection")
        assert vm.engine.degraded
        assert vm.collector.recovery.engine_degradations == 1
        assert [e for e in vm.engine.degraded_events if isinstance(e, EngineDegraded)]
        # The heap itself is fine; checking re-arms on the next pause.
        del vm.engine.pre_mark
        nodes[0]["next"] = None
        vm.assertions.assert_dead(nodes[1], site="rearm test")
        vm.gc("re-armed collection")
        assert not vm.engine.degraded
        assert len(vm.engine.log.of_kind(AssertionKind.DEAD)) >= 0
        assert vm.engine.registry.dead_satisfied >= 1

    def test_unhardened_hook_exception_propagates(self, vm):
        make_node_class(vm)
        self._raise_from_hook(vm)
        with pytest.raises(RuntimeError):
            vm.gc("unhardened")

    def test_check_budget_disables_after_n_checks(self):
        vm = VirtualMachine(heap_bytes=4 << 20)
        vm.engine.check_budget = 3
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 20)
        for i in range(5, 15):
            vm.assertions.assert_dead(nodes[i], site=f"beyond budget {i}")
        vm.gc("budgeted")
        # All 10 asserted nodes stay reachable: unbudgeted this is 10
        # violations, but the 4th check blows the budget and degrades.
        assert 0 < len(vm.engine.log) <= 3
        assert vm.engine.degraded_events
        assert vm.engine.degraded_events[-1].phase == "budget"

    def test_check_budget_validation(self):
        from repro.core.engine import AssertionEngine
        from repro.runtime.classes import ClassRegistry

        with pytest.raises(ConfigurationError):
            AssertionEngine(ClassRegistry(), check_budget=0)
        with pytest.raises(ValueError):  # ConfigurationError is a ValueError
            AssertionEngine(ClassRegistry(), check_budget=-5)

    def test_raising_reaction_handler_is_contained(self):
        vm = hardened_vm()
        injector = FaultInjector(vm, FaultPlan()).attach()
        injector.apply_now("raise-reaction")
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 3)
        vm.assertions.assert_dead(nodes[2], site="still reachable")
        vm.gc("violation under raising handler")
        violations = vm.engine.log.of_kind(AssertionKind.DEAD)
        assert violations, "violation must still be reported"
        assert violations[0].reaction == "log"  # policy fallback applied
        assert vm.collector.recovery.engine_degradations >= 1

    def test_configuration_error_still_propagates_through_guard(self):
        from repro.core.reactions import Reaction

        vm = hardened_vm()
        vm.engine.policy.add_handler(lambda v: Reaction.FORCE)
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 2)
        vm.assertions.assert_instances(cls, 1)
        with pytest.raises(ConfigurationError):
            vm.gc("forced non-lifetime")


# -- injected violations -----------------------------------------------------------------


class TestInjectedViolations:
    def test_flip_dead_reports_site_none(self):
        vm = hardened_vm()
        injector = FaultInjector(vm, FaultPlan()).attach()
        cls = make_node_class(vm)
        build_chain(vm, cls, 5)
        injector.apply_now("flip-dead")
        vm.gc("trace the injected bit")
        injected = [
            v
            for v in vm.engine.log.violations
            if v.kind is AssertionKind.DEAD and v.site is None
        ]
        assert injected, "injected DEAD bit must surface as a violation"

    def test_genuine_violation_keeps_its_site(self):
        vm = hardened_vm()
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 3)
        vm.assertions.assert_dead(nodes[2], site="tests/test_faults.py:genuine")
        vm.gc("genuine violation")
        genuine = vm.engine.log.of_kind(AssertionKind.DEAD)
        assert genuine and genuine[0].site is not None

    def test_flip_unshared_reports_violation(self):
        vm = hardened_vm()
        injector = FaultInjector(vm, FaultPlan()).attach()
        cls = make_node_class(vm)
        build_chain(vm, cls, 5)
        injector.apply_now("flip-unshared")
        vm.gc("trace the second reference")
        unshared = vm.engine.log.of_kind(AssertionKind.UNSHARED)
        assert unshared and unshared[0].site is None


# -- OOM recovery ladder -----------------------------------------------------------------


class TestOomRecovery:
    @pytest.mark.parametrize("collector,sweep_mode", SWEEP_CELLS)
    def test_growth_rescues_allocation(self, collector, sweep_mode):
        vm = hardened_vm(
            collector, sweep_mode, heap_bytes=24 << 10, max_heap_bytes=512 << 10
        )
        cls = make_node_class(vm)
        build_chain(vm, cls, 2000)  # far beyond 24 KB of live data
        assert vm.collector.recovery.heap_growths >= 1
        assert vm.collector.recovery.oom_recoveries >= 1
        assert vm.collector.heap_bytes <= 512 << 10
        vm.gc("post growth")
        assert verify_heap(vm) == []

    def test_exhaustion_raises_typed_error_with_triage(self):
        vm = hardened_vm(heap_bytes=24 << 10, max_heap_bytes=32 << 10)
        cls = make_node_class(vm)
        with pytest.raises(HeapExhausted) as exc_info:
            build_chain(vm, cls, 4000)
        exc = exc_info.value
        assert isinstance(exc, OutOfMemoryError)  # the pinned contract
        assert exc.requested_bytes > 0
        assert exc.type_name == "Node"
        assert exc.census, "census must list live types"
        assert "Node" in exc.census
        triage = exc.triage()
        assert "census" in triage and "Node" in triage
        assert exc.top_retained, "top-retained triage must be populated"

    def test_no_growth_without_ceiling(self):
        vm = hardened_vm(heap_bytes=24 << 10, max_heap_bytes=None)
        cls = make_node_class(vm)
        with pytest.raises(OutOfMemoryError):
            build_chain(vm, cls, 4000)
        assert vm.collector.recovery.heap_growths == 0

    def test_injected_alloc_fail_triggers_emergency_gc(self):
        vm = hardened_vm(heap_bytes=256 << 10, max_heap_bytes=512 << 10)
        injector = FaultInjector(vm, FaultPlan()).attach()
        cls = make_node_class(vm)
        build_chain(vm, cls, 5)
        collections_before = vm.stats.collections
        # One refusal is absorbed by the slow path's retry; a burst forces
        # the ladder's first rung (the emergency collection).
        injector.apply_now("alloc-fail", 4)
        build_chain(vm, cls, 5, root_name="after")
        assert vm.stats.collections > collections_before
        assert verify_heap(vm) == []


# -- telemetry circuit breaker -----------------------------------------------------------


class TestSinkBreaker:
    def test_breaker_trips_skips_and_recovers(self):
        vm = hardened_vm(heap_bytes=64 << 10)
        # 3 consecutive failed events (each retried once) trip the breaker:
        # events 1-3 burn 6 attempts, the cooldown skips 4, and the first
        # post-cooldown event fails once more then succeeds on its retry.
        sink = ExplodingSink(fail_times=7)
        vm.telemetry.add_sink(sink)
        cls = make_node_class(vm)
        for i in range(20):
            vm.gc(f"event {i}")
        telemetry = vm.telemetry
        assert telemetry.sink_breaker_trips >= 1
        assert telemetry.sink_events_skipped >= 1
        assert telemetry.sink_retries >= 1
        assert sink.delivered >= 1, "breaker must close again after recovery"
        summary = telemetry.summary()
        assert summary["sink_breaker_trips"] == telemetry.sink_breaker_trips

    def test_degradation_events_recorded(self):
        vm = hardened_vm()
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 3)
        nodes[2].obj.set(hdr.MARK_BIT)
        vm.gc("degrade once")
        assert vm.telemetry.degradations.get("heap", 0) >= 1
        events = vm.telemetry.degradation_events
        assert events and events[0].event == "degraded"
        assert "degraded" in vm.telemetry.render()


# -- snapshot crash consistency ----------------------------------------------------------


class TestSnapshotCrashConsistency:
    def test_abort_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "snap.jsonl")
        writer = SnapshotWriter(path, collector="test")
        writer.write_root("static 'x'", 0x1000)
        writer.abort()
        assert os.listdir(tmp_path) == []

    def test_failed_rewrite_preserves_previous_snapshot(self, tmp_path):
        path = str(tmp_path / "snap.jsonl")
        good = SnapshotWriter(path, collector="test")
        good.write_object(0x1000, "Node", 24, 0, 1, None, [])
        summary = good.finish()
        assert summary["objects"] == 1

        bad = SnapshotWriter(path, collector="test")
        bad.write_object(0x2000, "Node", 24, 0, 2, None, [])
        bad.abort()  # simulated mid-serialization failure

        reloaded = load_snapshot(path)
        assert list(reloaded.objects) == [0x1000]
        with open(index_path(path)) as handle:
            assert json.load(handle)["objects"] == 1
        assert not os.path.exists(path + ".tmp")
        assert not os.path.exists(index_path(path) + ".tmp")

    def test_injected_serialization_failure_never_publishes_partials(self, tmp_path):
        vm = hardened_vm(heap_bytes=128 << 10)
        SnapshotPolicy(str(tmp_path), every_n_gcs=1).attach(vm)
        injector = FaultInjector(vm, FaultPlan()).attach()
        injector.apply_now("raise-snapshot")
        cls = make_node_class(vm)
        build_chain(vm, cls, 5)
        vm.gc("capture blows up")
        assert vm.collector.recovery.snapshot_failures == 1
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == [], "no temp files after a contained failure"
        # The machinery recovers: the next capture publishes normally.
        vm.gc("capture recovers")
        published = [n for n in os.listdir(tmp_path) if n.endswith(".jsonl")]
        assert published
        for name in published:
            load_snapshot(str(tmp_path / name))  # parseable, not truncated

    def test_flush_aborts_on_write_error(self, tmp_path, monkeypatch):
        vm = VirtualMachine(heap_bytes=128 << 10)
        policy = SnapshotPolicy(str(tmp_path), every_n_gcs=1)
        policy.attach(vm)
        cls = make_node_class(vm)
        build_chain(vm, cls, 5)
        monkeypatch.setattr(
            SnapshotWriter,
            "write_object",
            lambda self, *a, **k: (_ for _ in ()).throw(OSError("disk full")),
        )
        vm.gc("flush fails")  # contained by the collector
        assert [n for n in os.listdir(tmp_path) if n.endswith(".tmp")] == []
        assert [n for n in os.listdir(tmp_path) if n.endswith(".jsonl")] == []


# -- typed exception hierarchy -----------------------------------------------------------


class TestTypedExceptions:
    def test_hierarchy(self):
        from repro.errors import HeapError

        assert issubclass(HeapCorruption, HeapError)
        assert issubclass(HeapExhausted, OutOfMemoryError)
        assert issubclass(EngineDegraded, ReproError)
        assert issubclass(ConfigurationError, ReproError)
        assert issubclass(ConfigurationError, ValueError)

    def test_heap_corruption_carries_problems(self):
        exc = HeapCorruption("bad heap", problems=["a", "b"], fenced={0x10})
        assert exc.problems == ["a", "b"]
        assert exc.fenced == {0x10}

    def test_verification_error_is_heap_corruption(self, vm):
        from repro.gc.verify import HeapVerificationError

        vm.statics.set_ref("bad", 0xBAD0)
        with pytest.raises(HeapCorruption) as exc_info:
            verify_heap(vm)
        assert isinstance(exc_info.value, HeapVerificationError)
        assert exc_info.value.problems


# -- the fuzzer vs the oracle ------------------------------------------------------------


def _oracle_reachable(vm) -> set[int]:
    """Brute-force reachability, independent of collector machinery."""
    heap = vm.heap
    seen: set[int] = set()
    stack = [
        address
        for _desc, address in vm.root_entries()
        if address != NULL and heap.contains(address)
    ]
    while stack:
        address = stack.pop()
        if address in seen:
            continue
        seen.add(address)
        for ref in heap.get(address).reference_slots():
            if ref != NULL and ref not in seen and heap.contains(ref):
                stack.append(ref)
    return seen


class TestFuzzerVsOracle:
    @pytest.mark.parametrize("collector,sweep_mode", SWEEP_CELLS)
    def test_randomized_faults_never_lose_live_objects(self, collector, sweep_mode):
        seed = 1234
        rng = random.Random(seed)
        vm = hardened_vm(
            collector, sweep_mode, heap_bytes=192 << 10, max_heap_bytes=384 << 10
        )
        injector = FaultInjector(vm, FaultPlan.generate(seed, count=6)).attach()
        cls = vm.define_class(
            "Fuzz", [("a", FieldKind.REF), ("b", FieldKind.REF), ("v", FieldKind.INT)]
        )
        roots: list = []
        for round_no in range(5):
            for i in range(60):
                handle = vm.new(cls, v=i)
                if roots and rng.random() < 0.6:
                    target = rng.choice(roots)
                    slot = rng.choice(["a", "b"])
                    handle[slot] = target
                if rng.random() < 0.3:
                    vm.statics.set_ref(f"fuzz_{round_no}_{i}", handle.address)
                    roots.append(handle)
            if rng.random() < 0.5 and roots:
                victim = roots.pop(rng.randrange(len(roots)))
                vm.statics.set_ref(victim_name(vm, victim), NULL)
            vm.gc(f"fuzz round {round_no}")

        vm.gc("fuzz recovery")
        vm.collector.sweep_all()
        assert verify_heap(vm) == []
        survivors = set(vm.heap.address_table())
        reachable = _oracle_reachable(vm)
        # Every oracle-reachable object must have survived collection.
        assert reachable <= survivors
        injector.detach()


def victim_name(vm, handle) -> str:
    """Find the static root name holding ``handle`` (fuzzer helper)."""
    for name, address in vm.statics.root_entries():
        if address == handle.address:
            return name.split("'")[1] if "'" in name else name
    return "fuzz_miss"


# -- the chaos harness itself ------------------------------------------------------------


class TestChaosHarness:
    def test_single_cell_passes(self):
        from repro.workloads.swapleak import SwapLeakConfig, run_swapleak

        result = run_cell(
            "marksweep",
            "eager",
            "swapleak",
            lambda vm: run_swapleak(vm, SwapLeakConfig(swaps=32, gc_every_swaps=8)),
            heap_bytes=96 << 10,
            seed=13,
        )
        assert result.ok, result.render()
        assert result.kinds_applied == FaultPlan.one_of_each(13).kinds()
        assert result.injected_dead_violations >= 1
        assert result.degradations

    def test_cli_quick_exits_zero(self):
        from repro.__main__ import main

        assert main(["chaos", "--quick", "--seed", "5"]) == 0
