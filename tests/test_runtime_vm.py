"""VM facade: construction, threads, allocation, configuration."""

import pytest

from repro.errors import AssertionUsageError, RuntimeFault
from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine
from tests.conftest import make_node_class


class TestConstruction:
    def test_default_is_marksweep_with_assertions(self):
        vm = VirtualMachine()
        assert vm.collector.name == "marksweep"
        assert vm.engine is not None
        assert vm.assertions is not None
        assert vm.collector.track_paths

    def test_base_configuration(self):
        vm = VirtualMachine(assertions=False)
        assert vm.engine is None
        assert vm.assertions is None
        assert not vm.collector.track_paths

    def test_unknown_collector_rejected(self):
        with pytest.raises(RuntimeFault):
            VirtualMachine(collector="cheney")

    @pytest.mark.parametrize("name", ["marksweep", "semispace", "generational"])
    def test_all_collectors_constructible(self, name):
        vm = VirtualMachine(heap_bytes=1 << 20, collector=name)
        assert vm.collector.name == name

    def test_assertions_property_raises_in_base_config(self):
        vm = VirtualMachine(assertions=False)
        from repro.core.api import GcAssertions

        with pytest.raises(AssertionUsageError):
            GcAssertions(vm)

    def test_describe_mentions_collector(self):
        vm = VirtualMachine()
        assert "marksweep" in vm.describe()


class TestThreads:
    def test_main_thread_exists(self):
        vm = VirtualMachine()
        assert vm.current_thread is vm.main_thread
        assert vm.main_thread.name == "main"

    def test_new_thread_gets_unique_id(self):
        vm = VirtualMachine()
        t1 = vm.new_thread()
        t2 = vm.new_thread("worker")
        assert t1.thread_id != t2.thread_id
        assert t2.name == "worker"

    def test_on_thread_switches_allocation_context(self):
        vm = VirtualMachine()
        cls = make_node_class(vm)
        worker = vm.new_thread("w")
        worker.begin_region()
        with vm.on_thread(worker):
            with vm.scope():
                vm.new(cls)
        assert len(worker.region_queue) == 1
        assert vm.current_thread is vm.main_thread

    def test_scope_binds_to_named_thread(self):
        vm = VirtualMachine()
        worker = vm.new_thread("w")
        with vm.scope(thread=worker) as scope:
            assert worker.scopes == [scope]
        assert worker.scopes == []


class TestAllocation:
    def test_new_by_class_name(self):
        vm = VirtualMachine()
        make_node_class(vm)
        with vm.scope():
            node = vm.new("Node", value=3)
            assert node["value"] == 3

    def test_new_array_negative_length_rejected(self):
        vm = VirtualMachine()
        with pytest.raises(RuntimeFault):
            vm.new_array(FieldKind.INT, -1)

    def test_new_on_array_class_rejected(self):
        vm = VirtualMachine()
        cls = make_node_class(vm)
        arr_cls = vm.array_class(cls)
        with pytest.raises(RuntimeFault):
            vm.new(arr_cls)

    def test_array_class_by_string(self):
        vm = VirtualMachine()
        make_node_class(vm)
        assert vm.array_class("Node").name == "Node[]"
        assert vm.array_class("int").name == "int[]"

    def test_define_class_accepts_string_kinds(self):
        vm = VirtualMachine()
        cls = vm.define_class("S", [("a", "int"), ("b", "ref")])
        assert cls.field("a").kind is FieldKind.INT
        assert cls.field("b").kind is FieldKind.REF

    def test_minor_gc_requires_generational(self):
        vm = VirtualMachine()
        with pytest.raises(RuntimeFault):
            vm.minor_gc()


class TestRootCallbacks:
    def test_root_entries_cover_statics_and_threads(self):
        vm = VirtualMachine()
        cls = make_node_class(vm)
        frame = vm.main_thread.push_frame("m")
        with vm.scope():
            a = vm.new(cls)
            b = vm.new(cls)
            vm.statics.set_ref("s", a.address)
            frame.set_ref("f", b.address)
            roots = {addr for _d, addr in vm.root_entries()}
            assert a.address in roots
            assert b.address in roots

    def test_null_roots_clears_everywhere(self):
        vm = VirtualMachine()
        cls = make_node_class(vm)
        frame = vm.main_thread.push_frame("m")
        with vm.scope():
            a = vm.new(cls)
            vm.statics.set_ref("s", a.address)
            frame.set_ref("f", a.address)
            vm.null_roots({a.address})
            roots = {addr for _d, addr in vm.root_entries()}
            assert a.address not in roots
