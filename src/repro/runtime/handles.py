"""Handles: ergonomic, identity-stable references for Python driver code.

A :class:`Handle` wraps a :class:`~repro.heap.object_model.HeapObject` so
workload code can read and write fields with ``obj["field"]`` syntax.  Two
properties make handles safe against the simulated collector:

* **Identity stability** — a handle references the ``HeapObject`` Python
  identity, not its address, so it stays valid across copying collections
  (the collector updates ``obj.address`` in place).
* **Explicit rooting** — a handle is *not* a GC root.  Objects are kept
  alive only by heap references, frame locals, statics, and
  :class:`HandleScope` entries.  Use ``vm.scope()`` around construction
  code, or ``handle.keep()`` to register an object in the current scope,
  mirroring JNI local references.  Dereferencing a handle whose object was
  reclaimed raises :class:`~repro.errors.UseAfterFreeError` — the simulated
  analog of the dangling pointer a real VM would silently follow.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Union

from repro.errors import TypeFault, UseAfterFreeError
from repro.heap import header as hdr
from repro.heap.layout import NULL
from repro.heap.object_model import FieldKind, HeapObject

if TYPE_CHECKING:
    from repro.runtime.threads import MutatorThread
    from repro.runtime.vm import VirtualMachine

FieldValue = Union["Handle", None, int, float, bool, str]


class HandleScope:
    """A root source holding the addresses of actively-used objects."""

    __slots__ = ("label", "addresses")

    def __init__(self, label: str = "scope"):
        self.label = label
        self.addresses: list[int] = []

    def register(self, address: int) -> None:
        self.addresses.append(address)

    def root_entries(self) -> Iterator[tuple[str, int]]:
        for address in self.addresses:
            if address != NULL:
                yield f"handle scope '{self.label}'", address

    def apply_forwarding(self, fwd: dict[int, int]) -> None:
        self.addresses = [fwd.get(a, a) for a in self.addresses]

    def null_out(self, victims: set[int]) -> None:
        self.addresses = [a for a in self.addresses if a not in victims]

    def __len__(self) -> int:
        return len(self.addresses)


class Handle:
    """A typed wrapper around one heap object."""

    __slots__ = ("vm", "obj")

    def __init__(self, vm: "VirtualMachine", obj: HeapObject):
        self.vm = vm
        self.obj = obj

    # -- basic properties ------------------------------------------------------------

    def _check(self) -> HeapObject:
        obj = self.obj
        if obj.status & hdr.FREED_BIT:
            raise UseAfterFreeError(
                f"handle to {obj.cls.name} used after the object was reclaimed"
            )
        return obj

    @property
    def address(self) -> int:
        return self._check().address

    @property
    def type_name(self) -> str:
        return self.obj.cls.name

    @property
    def is_array(self) -> bool:
        return self.obj.cls.is_array

    @property
    def is_live(self) -> bool:
        return not self.obj.is_freed

    def __len__(self) -> int:
        obj = self._check()
        if not obj.cls.is_array:
            raise TypeFault(f"{obj.cls.name} is not an array")
        return len(obj.slots)

    # -- field / element access --------------------------------------------------------

    def _slot_for(self, key: Union[str, int]) -> tuple[HeapObject, int, FieldKind]:
        obj = self._check()
        if isinstance(key, int):
            if not obj.cls.is_array:
                raise TypeFault(f"{obj.cls.name} is not an array; cannot index by {key}")
            if not 0 <= key < len(obj.slots):
                raise TypeFault(
                    f"index {key} out of bounds for {obj.cls.name} of length {len(obj.slots)}"
                )
            return obj, key, obj.cls.element_kind  # type: ignore[return-value]
        field = obj.cls.field(key)
        return obj, field.slot, field.kind

    def __getitem__(self, key: Union[str, int]) -> FieldValue:
        obj, slot, kind = self._slot_for(key)
        if self.vm.access_hook is not None:
            self.vm.access_hook(obj)
        value = obj.slots[slot]
        if kind.holds_address:
            if value == NULL:
                return None
            return Handle(self.vm, self.vm.heap.get(value))
        return value

    def __setitem__(self, key: Union[str, int], value: FieldValue) -> None:
        obj, slot, kind = self._slot_for(key)
        if kind.holds_address:
            if value is None:
                address = NULL
            elif isinstance(value, Handle):
                address = value._check().address
            elif isinstance(value, HeapObject):
                address = value.address
            else:
                raise TypeFault(
                    f"reference slot {key!r} of {obj.cls.name} cannot hold {value!r}"
                )
            if kind.is_weak:
                # Weak stores create no strong edge: no write barrier.
                obj.slots[slot] = address
            else:
                self.vm.write_ref(obj, slot, address)
        else:
            if isinstance(value, (Handle, HeapObject)):
                raise TypeFault(
                    f"scalar slot {key!r} of {obj.cls.name} cannot hold a reference"
                )
            obj.slots[slot] = value

    def ref_address(self, key: Union[str, int]) -> int:
        """Raw address stored in a (strong or weak) reference slot."""
        obj, slot, kind = self._slot_for(key)
        if not kind.holds_address:
            raise TypeFault(f"slot {key!r} of {obj.cls.name} is not a reference")
        return obj.slots[slot]

    def refs(self) -> Iterator[Optional["Handle"]]:
        """Iterate reference-array elements as handles."""
        obj = self._check()
        for value in obj.reference_slots():
            yield None if value == NULL else Handle(self.vm, self.vm.heap.get(value))

    # -- rooting -----------------------------------------------------------------------

    def keep(self, thread: Optional["MutatorThread"] = None) -> "Handle":
        """Register this object in the current handle scope (a GC root)."""
        thread = thread or self.vm.current_thread
        if not thread.scopes:
            raise TypeFault(
                f"thread {thread.name!r} has no active handle scope; "
                "wrap driver code in `with vm.scope(): ...`"
            )
        thread.scopes[-1].register(self._check().address)
        return self

    # -- comparisons ---------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Handle) and other.obj is self.obj

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return id(self.obj)

    def __repr__(self) -> str:
        state = "freed" if self.obj.is_freed else f"@{self.obj.address:#x}"
        return f"<handle {self.obj.cls.name} {state}>"
