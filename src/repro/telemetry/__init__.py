"""Telemetry: the structured GC event stream and its exporters.

The paper's whole evaluation (§3.1) is an observability exercise —
decompose total time into mutator / GC / ownership-phase time and count the
work (objects traced, ownees checked).  This package turns that from
ad-hoc bench bookkeeping into a runtime subsystem every collector and the
assertion engine emit into:

* :class:`~repro.telemetry.events.GcEvent` — one structured record per
  collection, kept in a bounded :class:`~repro.telemetry.events.EventRing`
  on the VM.
* :class:`~repro.telemetry.histogram.LogHistogram` — streaming log-scale
  distributions of GC pauses, allocation sizes, and ownees checked per GC.
* :class:`~repro.telemetry.census.ClassCensus` — a per-class live-instance
  time series sampled at every collection (the Cork baseline consumes it).
* Sinks (:mod:`repro.telemetry.sinks`) — in-memory, JSON-lines, and a
  Prometheus text exposition renderer.

The emit path is designed to cost nothing when telemetry is off: a VM built
with ``telemetry=False`` leaves ``collector.telemetry`` as ``None``, so the
hot paths pay one attribute load and an ``is None`` test — measured by the
``abl-telemetry`` benchmark, mirroring the §2.7 "path tracking is free"
ablation.

Usage::

    vm = VirtualMachine()                 # telemetry on by default
    run_pseudojbb(vm)
    vm.telemetry.pause_hist.summary()     # p50/p90/p99 pauses
    vm.telemetry.events.latest.render()   # last collection, decomposed
    print(render_prometheus(vm.telemetry))
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

from repro.telemetry.census import ClassCensus, take_census
from repro.telemetry.events import (
    EVENT_SCHEMA,
    DegradedEvent,
    EventRing,
    GcEvent,
    SnapshotEvent,
)
from repro.telemetry.histogram import LogHistogram
from repro.telemetry.sinks import (
    ExpositionWriter,
    JsonlSink,
    MemorySink,
    TelemetrySink,
    render_prometheus,
    validate_exposition,
)

if TYPE_CHECKING:
    from repro.core.reporting import Violation
    from repro.gc.base import Collector
    from repro.gc.stats import GcStats

__all__ = [
    "ClassCensus",
    "DegradedEvent",
    "EVENT_SCHEMA",
    "EventRing",
    "ExpositionWriter",
    "GcEvent",
    "JsonlSink",
    "LogHistogram",
    "MemorySink",
    "SnapshotEvent",
    "Telemetry",
    "TelemetrySink",
    "render_prometheus",
    "take_census",
    "validate_exposition",
]

#: Default number of per-collection events retained on the VM.
DEFAULT_RING_CAPACITY = 256

#: Circuit breaker: consecutive failed *events* (each already retried once)
#: before a sink is opened.  Deliberately above the two-event failure window
#: the basic resilience test exercises.
_BREAKER_THRESHOLD = 3

#: Events skipped while a breaker is open, doubling per trip up to the cap.
#: Event counts (not wall clock) keep the backoff deterministic.
_BREAKER_COOLDOWN_INITIAL = 4
_BREAKER_COOLDOWN_MAX = 64


class _SinkState:
    """Per-sink circuit-breaker state (keyed by ``id(sink)``)."""

    __slots__ = ("failures", "skip_remaining", "cooldown")

    def __init__(self) -> None:
        self.failures = 0
        self.skip_remaining = 0
        self.cooldown = _BREAKER_COOLDOWN_INITIAL


class _PendingCollection:
    """Begin-of-collection snapshot, closed out by ``finish_collection``."""

    __slots__ = ("kind", "trigger", "stats_before", "bytes_before", "live_before", "start")

    def __init__(
        self,
        kind: str,
        trigger: str,
        stats_before: "GcStats",
        bytes_before: int,
        live_before: int,
    ):
        self.kind = kind
        self.trigger = trigger
        self.stats_before = stats_before
        self.bytes_before = bytes_before
        self.live_before = live_before
        self.start = time.perf_counter()


class Telemetry:
    """The per-VM telemetry hub: event ring, histograms, census, sinks."""

    def __init__(
        self,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        enabled: bool = True,
        sinks: Optional[list] = None,
    ):
        self.enabled = enabled
        self.events = EventRing(ring_capacity)
        #: GC stop-the-world pauses, microseconds to tens of seconds.
        self.pause_hist = LogHistogram(1e-6, 10.0)
        #: Mutator allocation request sizes, in bytes.
        self.alloc_hist = LogHistogram(8, 1 << 20)
        #: Ownees checked per *full* collection (§3.1.2's per-GC counts).
        self.ownees_hist = LogHistogram(1, 1_000_000)
        #: Lazy sweep-debt repayment latency: seconds per allocation-slow-
        #: path sweep slice (the mutator-side stall lazy mode trades pause
        #: time for).  Sub-100ns slices clamp into the first bucket.
        self.lazy_slice_hist = LogHistogram(1e-7, 10.0)
        #: Chunks and cells reclaimed on the mutator side, lifetime totals.
        self.lazy_chunks_swept = 0
        self.lazy_cells_released = 0
        self.census = ClassCensus()
        self.sinks: list[TelemetrySink] = list(sinks or [])
        self.collections_by_kind: dict[str, int] = {}
        self.violations_by_kind: dict[str, int] = {}
        #: Every heap snapshot written this VM lifetime (unbounded on
        #: purpose: snapshots are rare and each record is a few words).
        self.snapshots: list[SnapshotEvent] = []
        self.sink_errors = 0
        #: Recovery-path activations by kind ("heap", "engine", "sink",
        #: "snapshot", "heap_grown") and their event records.
        self.degradations: dict[str, int] = {}
        self.degradation_events: list[DegradedEvent] = []
        #: Circuit-breaker bookkeeping: retries attempted, events skipped
        #: while a breaker was open, and breaker trips.
        self.sink_retries = 0
        self.sink_events_skipped = 0
        self.sink_breaker_trips = 0
        self._sink_states: dict[int, _SinkState] = {}

    # -- wiring -----------------------------------------------------------------------

    def add_sink(self, sink: TelemetrySink) -> TelemetrySink:
        self.sinks.append(sink)
        return sink

    def close(self) -> None:
        for sink in self.sinks:
            try:
                sink.close()
            except Exception:
                self.sink_errors += 1

    def _emit(self, event) -> None:
        """Stream one event to every sink, behind a per-sink circuit breaker.

        A failing emit gets one immediate retry; a still-failing event
        counts a single ``sink_errors`` increment.  After
        ``_BREAKER_THRESHOLD`` consecutive failed events the sink's breaker
        opens and events are skipped for a cooldown (doubling per trip, up
        to a cap) measured in *events*, so behavior stays deterministic.  A
        successful emit closes the breaker and resets the cooldown.
        Exporter failures must never propagate into the mutator or a pause.
        """
        states = self._sink_states
        for sink in self.sinks:
            state = states.get(id(sink))
            if state is None:
                state = states[id(sink)] = _SinkState()
            if state.skip_remaining > 0:
                state.skip_remaining -= 1
                self.sink_events_skipped += 1
                continue
            try:
                sink.emit(event)
            except Exception:
                self.sink_retries += 1
                try:
                    sink.emit(event)
                except Exception:
                    self.sink_errors += 1
                    state.failures += 1
                    if state.failures >= _BREAKER_THRESHOLD:
                        state.skip_remaining = state.cooldown
                        state.cooldown = min(state.cooldown * 2, _BREAKER_COOLDOWN_MAX)
                        state.failures = 0
                        self.sink_breaker_trips += 1
                    continue
                state.failures = 0
                state.cooldown = _BREAKER_COOLDOWN_INITIAL
            else:
                state.failures = 0
                state.cooldown = _BREAKER_COOLDOWN_INITIAL

    # -- emit path (collectors call these) ----------------------------------------------

    def record_allocation(self, nbytes: int) -> None:
        self.alloc_hist.record(nbytes)

    def record_lazy_slice(self, seconds: float, chunks: int, released: int) -> None:
        """Record one allocation-slow-path sweep slice (lazy mode only)."""
        self.lazy_slice_hist.record(seconds)
        self.lazy_chunks_swept += chunks
        self.lazy_cells_released += released

    def record_violation(self, violation: "Violation") -> None:
        kind = violation.kind.value
        self.violations_by_kind[kind] = self.violations_by_kind.get(kind, 0) + 1

    def record_snapshot(
        self,
        collector: str,
        seq: int,
        trigger: str,
        path: str,
        objects: int,
        roots: int,
        total_bytes: int,
        file_bytes: int,
        duration_s: float,
    ) -> SnapshotEvent:
        """Record a ``snapshot_written`` event and stream it to every sink."""
        event = SnapshotEvent(
            event="snapshot_written",
            seq=seq,
            collector=collector,
            trigger=trigger,
            path=path,
            objects=objects,
            roots=roots,
            total_bytes=total_bytes,
            file_bytes=file_bytes,
            duration_s=duration_s,
        )
        self.snapshots.append(event)
        self._emit(event)
        return event

    def broadcast(self, event) -> None:
        """Stream a typed out-of-band event (e.g. a monitor ``AlertEvent``)
        to every sink, behind the same per-sink circuit breakers the GC
        event stream uses.  The event must expose ``as_dict()``/``render()``
        like the other sink payloads."""
        self._emit(event)

    def record_degradation(self, kind: str, detail: str, seq: int = 0) -> DegradedEvent:
        """Record one recovery-path activation and stream it to the sinks."""
        self.degradations[kind] = self.degradations.get(kind, 0) + 1
        event = DegradedEvent(
            event="degraded", kind=kind, seq=seq, detail=detail,
            wall_time=time.time(),
        )
        self.degradation_events.append(event)
        self._emit(event)
        return event

    def begin_collection(
        self, collector: "Collector", kind: str, trigger: str
    ) -> _PendingCollection:
        return _PendingCollection(
            kind,
            trigger,
            collector.stats.copy(),
            collector.bytes_in_use(),
            len(collector.heap),
        )

    def finish_collection(
        self, pending: _PendingCollection, collector: "Collector"
    ) -> GcEvent:
        end_mono = time.perf_counter()
        pause = end_mono - pending.start
        stats = collector.stats
        delta = stats.diff(pending.stats_before)
        event = GcEvent(
            seq=stats.collections,
            collector=collector.name,
            kind=pending.kind,
            trigger=pending.trigger,
            pause_s=pause,
            ownership_s=delta.ownership_phase_seconds,
            mark_s=delta.mark_seconds,
            sweep_s=delta.sweep_seconds,
            objects_traced=delta.objects_traced,
            edges_traced=delta.edges_traced,
            objects_swept=delta.objects_swept,
            objects_freed=delta.objects_freed,
            bytes_freed=delta.bytes_freed,
            objects_promoted=delta.objects_promoted,
            bytes_before=pending.bytes_before,
            bytes_after=collector.bytes_in_use(),
            live_before=pending.live_before,
            live_after=len(collector.heap),
            heap_bytes=collector.heap_bytes,
            assertion_checks=delta.header_bit_checks + delta.ownees_checked,
            ownees_checked=delta.ownees_checked,
            violations=delta.violations_detected,
            sweep_debt_chunks=collector.sweep_debt(),
            quarantine_depth=len(collector.quarantine),
            wall_time=time.time(),
            mono_time=end_mono,
        )
        self.events.append(event)
        self.collections_by_kind[event.kind] = (
            self.collections_by_kind.get(event.kind, 0) + 1
        )
        self.pause_hist.record(pause)
        if event.kind == "full":
            self.ownees_hist.record(event.ownees_checked)
        # Lazy sweep modes end the pause with dead objects still tabled;
        # the pending-garbage predicate keeps the census exact regardless.
        self.census.observe(
            take_census(collector.heap, skip=collector.pending_garbage_predicate()),
            gc_number=event.seq,
        )
        # Exporter failures must never propagate into a GC pause; _emit
        # contains them behind the per-sink circuit breaker.
        self._emit(event)
        return event

    # -- reporting --------------------------------------------------------------------

    def summary(self) -> dict:
        """The machine-readable rollup behind ``python -m repro stats --json``."""
        return {
            "enabled": self.enabled,
            "collections": dict(self.collections_by_kind),
            "events": [event.as_dict() for event in self.events],
            "events_total": self.events.appended,
            "events_dropped": self.events.dropped,
            "ring_capacity": self.events.capacity,
            "pause_seconds": self.pause_hist.summary(),
            "allocation_bytes": self.alloc_hist.summary(),
            "ownees_checked_per_gc": self.ownees_hist.summary(),
            "lazy_sweep_slices": {
                "latency_seconds": self.lazy_slice_hist.summary(),
                "chunks_swept": self.lazy_chunks_swept,
                "cells_released": self.lazy_cells_released,
            },
            "census": self.census.as_dict(),
            "violations_by_kind": dict(self.violations_by_kind),
            "snapshots": [event.as_dict() for event in self.snapshots],
            "sink_errors": self.sink_errors,
            "sink_retries": self.sink_retries,
            "sink_events_skipped": self.sink_events_skipped,
            "sink_breaker_trips": self.sink_breaker_trips,
            "degradations": dict(self.degradations),
            "degradation_events": [event.as_dict() for event in self.degradation_events],
        }

    def render(self, census_top: int = 8, recent_events: int = 5) -> str:
        """Human-readable summary for the default CLI output."""
        lines: list[str] = []
        total = sum(self.collections_by_kind.values())
        by_kind = ", ".join(
            f"{count} {kind}" for kind, count in sorted(self.collections_by_kind.items())
        )
        lines.append(f"collections: {total} ({by_kind or 'none'})")
        pauses = self.pause_hist
        if pauses.count:
            lines.append(
                "pause times:  "
                f"p50={pauses.percentile(50) * 1e3:.2f}ms "
                f"p90={pauses.percentile(90) * 1e3:.2f}ms "
                f"p99={pauses.percentile(99) * 1e3:.2f}ms "
                f"max={pauses.max_value * 1e3:.2f}ms"
            )
        allocs = self.alloc_hist
        if allocs.count:
            lines.append(
                f"allocations:  {allocs.count} requests, "
                f"p50={allocs.percentile(50):.0f}B p99={allocs.percentile(99):.0f}B"
            )
        if self.ownees_hist.count:
            lines.append(
                f"ownees/GC:    p50={self.ownees_hist.percentile(50):.0f} "
                f"max={self.ownees_hist.max_value:.0f}"
            )
        slices = self.lazy_slice_hist
        if slices.count:
            lines.append(
                f"lazy sweep:   {slices.count} slices, "
                f"p50={slices.percentile(50) * 1e6:.0f}us "
                f"p99={slices.percentile(99) * 1e6:.0f}us "
                f"max={slices.max_value * 1e3:.2f}ms "
                f"({self.lazy_chunks_swept} chunks, "
                f"{self.lazy_cells_released} cells released)"
            )
        if self.violations_by_kind:
            rendered = ", ".join(
                f"{kind}={count}" for kind, count in sorted(self.violations_by_kind.items())
            )
            lines.append(f"violations:   {rendered}")
        census = self.census.latest()
        if census:
            lines.append(f"live census ({len(census)} classes, top {census_top} by bytes):")
            ranked = sorted(census.items(), key=lambda kv: kv[1][1], reverse=True)
            for name, (count, nbytes) in ranked[:census_top]:
                lines.append(f"  {name:24} {count:>8} objects {nbytes:>12} bytes")
        if self.snapshots:
            lines.append(f"heap snapshots ({len(self.snapshots)} written):")
            for event in self.snapshots[-3:]:
                lines.append(f"  {event.render()}")
        if self.degradations:
            rendered = ", ".join(
                f"{kind}={count}" for kind, count in sorted(self.degradations.items())
            )
            lines.append(f"degradations: {rendered}")
            for event in self.degradation_events[-3:]:
                lines.append(f"  {event.render()}")
        if self.sink_breaker_trips:
            lines.append(
                f"sink breaker: {self.sink_breaker_trips} trip(s), "
                f"{self.sink_events_skipped} event(s) skipped, "
                f"{self.sink_retries} retry(ies)"
            )
        events = self.events.snapshot()
        if events:
            lines.append(f"recent collections (last {min(recent_events, len(events))}):")
            for event in events[-recent_events:]:
                lines.append(f"  {event.render()}")
        if self.events.dropped:
            lines.append(
                f"(ring dropped {self.events.dropped} older events; "
                f"capacity {self.events.capacity})"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<Telemetry {'on' if self.enabled else 'off'} "
            f"events={len(self.events)} sinks={len(self.sinks)}>"
        )
