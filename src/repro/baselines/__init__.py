"""Heuristic leak-detection baselines the paper positions against.

§1 and §4 of the paper contrast GC assertions with two families of
leak-detection heuristics:

* **heap differencing / type growth** (Cork, JRockit, LeakBot, …) — "tools
  [that] use heap differencing to find objects that are probably
  responsible for heap growth" — implemented by
  :class:`~repro.baselines.cork.TypeGrowthProfiler`;
* **staleness** (SWAT, Bell) — "objects that have not been accessed in a
  long time are probably memory leaks" — implemented by
  :class:`~repro.baselines.staleness.StalenessDetector`.

Both "can only suggest potential leaks, which the programmer must then
examine manually", report types or candidates rather than instance paths,
and can raise false positives — the comparison benchmarks
(``benchmarks/test_comparison_baselines.py``) measure exactly those
contrasts against GC assertions.
"""

from repro.baselines.cork import GrowthReport, TypeGrowthProfiler
from repro.baselines.staleness import StaleCandidate, StalenessDetector

__all__ = [
    "GrowthReport",
    "TypeGrowthProfiler",
    "StaleCandidate",
    "StalenessDetector",
]
