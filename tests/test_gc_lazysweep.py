"""Lazy (chunked) sweeping: parity with the eager discipline.

The lazy mode changes *when* dead cells are reclaimed — incrementally on
the allocation slow path instead of inside the pause — never *what* is
reclaimed.  These tests drive identical deterministic workloads through
twin eager/lazy VMs and require byte-exact heap state once the lazy VM's
outstanding sweep debt is repaid.
"""

import random

import pytest

from repro.errors import HeapError, RuntimeFault, UseAfterFreeError
from repro.gc.marksweep import MarkSweepCollector
from repro.gc.verify import verify_heap
from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine
from repro.telemetry.census import take_census
from tests.conftest import build_chain, make_node_class

HEAP = 256 << 10


def _make_vm(sweep_mode: str, space_policy: str = "freelist") -> VirtualMachine:
    if space_policy == "freelist":
        return VirtualMachine(heap_bytes=HEAP, sweep_mode=sweep_mode)
    collector = MarkSweepCollector(
        HEAP, space_policy=space_policy, sweep_mode=sweep_mode
    )
    return VirtualMachine(heap_bytes=HEAP, collector=collector)


def _churn(vm: VirtualMachine, seed: int = 42, rounds: int = 30) -> None:
    """Deterministic interleaved allocation, mutation, and explicit GCs."""
    rng = random.Random(seed)
    cls = make_node_class(vm)
    array_cls = vm.array_class(cls)
    for round_no in range(rounds):
        with vm.scope():
            chain = [vm.new(cls, value=round_no) for _ in range(rng.randrange(4, 24))]
            for prev, node in zip(chain, chain[1:]):
                prev["next"] = node
            arr_len = rng.randrange(1, 9)
            arr = vm.new_array(cls, arr_len)
            for idx in range(arr_len):
                arr[idx] = chain[rng.randrange(len(chain))]
            if rng.random() < 0.5:
                vm.statics.set_ref(f"keep-{round_no}", chain[0].address)
            if rng.random() < 0.3:
                vm.statics.set_ref(f"keep-arr-{round_no}", arr.address)
        if rng.random() < 0.4:
            vm.gc(f"churn round {round_no}")
        if round_no > 4 and rng.random() < 0.2:
            vm.statics.drop_ref(f"keep-{round_no - rng.randrange(1, 5)}")


class TestEagerLazyParity:
    @pytest.mark.parametrize("policy", ["freelist", "blocks"])
    def test_heap_state_identical_after_debt_repaid(self, policy):
        eager = _make_vm("eager", policy)
        lazy = _make_vm("lazy", policy)
        _churn(eager)
        _churn(lazy)
        lazy.collector.sweep_all()
        # Physical placement may differ (lazy recycles cells later, so some
        # allocations land on fresh bump addresses) — the logical live set
        # must not.
        assert lazy.heap.live_bytes() == eager.heap.live_bytes()
        assert len(lazy.heap) == len(eager.heap)
        assert take_census(lazy.heap) == take_census(eager.heap)
        if policy == "freelist":
            # Free lists reclaim per cell: byte-exact space accounting.
            assert lazy.collector.bytes_in_use() == eager.collector.bytes_in_use()
        else:
            # Blocks reclaim per block; occupancy still bounds live bytes.
            assert lazy.collector.bytes_in_use() >= lazy.heap.live_bytes()

    @pytest.mark.parametrize("policy", ["freelist", "blocks"])
    def test_work_counters_identical(self, policy):
        eager = _make_vm("eager", policy)
        lazy = _make_vm("lazy", policy)
        _churn(eager, seed=7)
        _churn(lazy, seed=7)
        lazy.collector.sweep_all()
        for field in ("objects_traced", "edges_traced", "objects_freed", "bytes_freed"):
            assert getattr(lazy.stats, field) == getattr(eager.stats, field), field

    def test_verify_heap_passes_with_debt_outstanding(self):
        vm = _make_vm("lazy")
        _churn(vm, seed=3, rounds=10)
        vm.gc("leave debt behind")
        # verify_heap sweeps outstanding debt itself (the exactness hatch).
        assert verify_heap(vm, raise_on_error=False) == []
        assert vm.collector.sweep_debt() == 0


class TestLazySemantics:
    def test_pause_ends_at_mark_and_debt_is_reported(self):
        vm = _make_vm("lazy")
        cls = make_node_class(vm)
        with vm.scope():
            for _ in range(64):
                vm.new(cls)
        vm.gc("garbage now unswept")
        assert vm.collector.sweep_debt() > 0
        assert vm.telemetry.events.latest.sweep_debt_chunks == vm.collector.sweep_debt()
        assert vm.collector.pending_garbage_predicate() is not None
        vm.collector.sweep_all()
        assert vm.collector.sweep_debt() == 0
        assert vm.collector.pending_garbage_predicate() is None

    def test_use_after_free_detected_once_swept(self):
        vm = _make_vm("lazy")
        cls = make_node_class(vm)
        with vm.scope():
            a = vm.new(cls)
        vm.gc()
        vm.collector.sweep_all()
        with pytest.raises(UseAfterFreeError):
            a["value"]

    def test_no_resurrection_of_swept_cells_under_pressure(self):
        # Allocation pressure drives incremental sweeping; dead objects must
        # be reclaimed exactly once and never come back live.
        vm = VirtualMachine(heap_bytes=16 << 10, sweep_mode="lazy")
        cls = make_node_class(vm)
        keep = build_chain(vm, cls, 8)
        dead = []
        for _ in range(2000):
            with vm.scope():
                dead.append(vm.new(cls))
        assert vm.stats.collections > 0
        assert vm.stats.chunks_swept > 0
        vm.gc("judge the tail allocated since the last pressure GC")
        vm.collector.sweep_all()
        assert all(node.is_live for node in keep)
        assert all(not handle.is_live for handle in dead)

    def test_objects_allocated_after_mark_survive_debt_sweep(self):
        # The allocation-epoch stamp: a pending chunk sweep must skip cells
        # installed after the mark that scheduled it.
        vm = _make_vm("lazy")
        cls = make_node_class(vm)
        with vm.scope():
            for _ in range(32):
                vm.new(cls)
        vm.gc("schedule debt")
        assert vm.collector.sweep_debt() > 0
        survivor = build_chain(vm, cls, 4, root_name="post-mark")
        vm.collector.sweep_all()
        assert all(node.is_live for node in survivor)

    def test_violations_identical_eager_vs_lazy(self):
        # Property-style: random graphs with a random asserted subset must
        # produce the same violation set under both sweep disciplines.
        for seed in (11, 29, 83):
            reports = []
            for mode in ("eager", "lazy"):
                vm = _make_vm(mode)
                rng = random.Random(seed)
                cls = make_node_class(vm)
                with vm.scope():
                    nodes = [vm.new(cls, value=i) for i in range(40)]
                    for node in nodes:
                        node["next"] = nodes[rng.randrange(len(nodes))]
                    for i in rng.sample(range(len(nodes)), 8):
                        vm.statics.set_ref(f"root-{i}", nodes[i].address)
                    for i in rng.sample(range(len(nodes)), 12):
                        vm.assertions.assert_dead(nodes[i], site=f"site-{i}")
                vm.gc("judge assertions")
                reports.append(
                    sorted(
                        (v.kind.value, v.type_name, v.site)
                        for v in vm.engine.log.violations
                    )
                )
            assert reports[0] == reports[1], f"seed {seed}"
            assert reports[0], f"seed {seed} produced no violations to compare"


class TestGenerationalLazy:
    def test_parity_with_promotions(self):
        results = []
        for mode in ("eager", "lazy"):
            vm = VirtualMachine(
                heap_bytes=64 << 10, collector="generational", sweep_mode=mode
            )
            _churn(vm, seed=5, rounds=20)
            vm.collector.sweep_all()
            results.append(
                (vm.heap.live_bytes(), len(vm.heap), vm.stats.objects_promoted)
            )
        assert results[0] == results[1]

    def test_mature_debt_repaid_on_demand(self):
        vm = VirtualMachine(
            heap_bytes=32 << 10, collector="generational", sweep_mode="lazy"
        )
        cls = make_node_class(vm)
        for _ in range(600):
            with vm.scope():
                vm.new(cls)
        assert vm.stats.collections > 0
        live = build_chain(vm, cls, 6)
        vm.gc("full with lazy mature sweep")
        vm.collector.sweep_all()
        assert all(node.is_live for node in live)
        assert vm.collector.sweep_debt() == 0


class TestConfiguration:
    def test_unknown_sweep_mode_rejected(self):
        with pytest.raises(HeapError):
            MarkSweepCollector(1 << 20, sweep_mode="deferred")

    def test_sweep_mode_rejected_for_non_sweeping_collector(self):
        with pytest.raises(RuntimeFault):
            VirtualMachine(heap_bytes=1 << 20, collector="semispace", sweep_mode="lazy")
