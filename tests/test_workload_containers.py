"""Heap-backed container tests (Vector, IntVector, HashTable)."""

import pytest

from repro.errors import RuntimeFault
from repro.runtime.vm import VirtualMachine
from repro.workloads.containers import HashTable, IntVector, Vector
from tests.conftest import make_node_class


@pytest.fixture
def cvm():
    return VirtualMachine(heap_bytes=4 << 20)


@pytest.fixture
def item_cls(cvm):
    return make_node_class(cvm)


def rooted_vector(cvm, capacity=2):
    vec = Vector.new(cvm, capacity=capacity)
    cvm.statics.set_ref("vec", vec.handle.address)
    return vec


class TestVector:
    def test_append_get(self, cvm, item_cls):
        vec = rooted_vector(cvm)
        with cvm.scope():
            a = cvm.new(item_cls, value=1)
            vec.append(a)
        assert len(vec) == 1
        assert vec.get(0)["value"] == 1

    def test_growth_preserves_contents(self, cvm, item_cls):
        vec = rooted_vector(cvm, capacity=2)
        with cvm.scope():
            for i in range(20):
                vec.append(cvm.new(item_cls, value=i))
        assert [vec.get(i)["value"] for i in range(20)] == list(range(20))

    def test_remove_at_shifts(self, cvm, item_cls):
        vec = rooted_vector(cvm)
        with cvm.scope():
            for i in range(5):
                vec.append(cvm.new(item_cls, value=i))
        removed = vec.remove_at(1)
        assert removed["value"] == 1
        assert [v["value"] for v in vec] == [0, 2, 3, 4]

    def test_pop(self, cvm, item_cls):
        vec = rooted_vector(cvm)
        with cvm.scope():
            vec.append(cvm.new(item_cls, value=9))
        assert vec.pop()["value"] == 9
        assert len(vec) == 0
        with pytest.raises(RuntimeFault):
            vec.pop()

    def test_out_of_range(self, cvm):
        vec = rooted_vector(cvm)
        with pytest.raises(RuntimeFault):
            vec.get(0)
        with pytest.raises(RuntimeFault):
            vec.set(0, None)
        with pytest.raises(RuntimeFault):
            vec.remove_at(0)

    def test_clear_releases_references(self, cvm, item_cls):
        vec = rooted_vector(cvm)
        with cvm.scope():
            handle = cvm.new(item_cls)
            vec.append(handle)
        vec.clear()
        cvm.gc()
        assert not handle.is_live

    def test_removed_elements_are_collectable(self, cvm, item_cls):
        vec = rooted_vector(cvm)
        with cvm.scope():
            for i in range(3):
                vec.append(cvm.new(item_cls, value=i))
        victim = vec.remove_at(0)
        cvm.gc()
        assert not victim.is_live
        assert vec.get(0)["value"] == 1

    def test_index_of(self, cvm, item_cls):
        vec = rooted_vector(cvm)
        with cvm.scope():
            a = cvm.new(item_cls)
            b = cvm.new(item_cls)
            vec.append(a)
            vec.append(b)
        assert vec.index_of(b) == 1
        with cvm.scope():
            assert vec.index_of(cvm.new(item_cls)) == -1

    def test_survives_gc_under_pressure(self, item_cls):
        vm = VirtualMachine(heap_bytes=16 << 10)
        cls = make_node_class(vm)
        vec = Vector.new(vm, capacity=2)
        vm.statics.set_ref("vec", vec.handle.address)
        for i in range(2000):
            with vm.scope():
                vec.append(vm.new(cls, value=i))
            if len(vec) > 20:
                vec.remove_at(0)
        assert vm.stats.collections > 0
        values = [v["value"] for v in vec]
        assert values == list(range(2000 - len(values), 2000))


class TestIntVector:
    def test_append_and_growth(self, cvm):
        iv = IntVector.new(cvm, capacity=1)
        cvm.statics.set_ref("iv", iv.handle.address)
        for i in range(50):
            iv.append(i * 2)
        assert len(iv) == 50
        assert list(iv) == [i * 2 for i in range(50)]
        assert iv.get(10) == 20

    def test_out_of_range(self, cvm):
        iv = IntVector.new(cvm)
        cvm.statics.set_ref("iv", iv.handle.address)
        with pytest.raises(RuntimeFault):
            iv.get(0)


class TestHashTable:
    def test_put_get(self, cvm, item_cls):
        table = HashTable.new(cvm, buckets=4)
        cvm.statics.set_ref("t", table.handle.address)
        with cvm.scope():
            a = cvm.new(item_cls, value=1)
            assert table.put("a", a)
        assert table.get("a")["value"] == 1
        assert table.get("missing") is None

    def test_update_existing(self, cvm, item_cls):
        table = HashTable.new(cvm, buckets=4)
        cvm.statics.set_ref("t", table.handle.address)
        with cvm.scope():
            table.put("k", cvm.new(item_cls, value=1))
            assert not table.put("k", cvm.new(item_cls, value=2))
        assert table.get("k")["value"] == 2
        assert len(table) == 1

    def test_collisions_chain(self, cvm, item_cls):
        table = HashTable.new(cvm, buckets=1)  # everything collides
        cvm.statics.set_ref("t", table.handle.address)
        with cvm.scope():
            for i in range(10):
                table.put(f"k{i}", cvm.new(item_cls, value=i))
        assert len(table) == 10
        for i in range(10):
            assert table.get(f"k{i}")["value"] == i

    def test_remove(self, cvm, item_cls):
        table = HashTable.new(cvm, buckets=2)
        cvm.statics.set_ref("t", table.handle.address)
        with cvm.scope():
            for i in range(6):
                table.put(f"k{i}", cvm.new(item_cls, value=i))
        removed = table.remove("k3")
        assert removed["value"] == 3
        assert table.get("k3") is None
        assert len(table) == 5
        assert table.remove("k3") is None

    def test_contains_keys_values(self, cvm, item_cls):
        table = HashTable.new(cvm, buckets=4)
        cvm.statics.set_ref("t", table.handle.address)
        with cvm.scope():
            table.put("x", cvm.new(item_cls, value=5))
        assert table.contains("x")
        assert not table.contains("y")
        assert list(table.keys()) == ["x"]
        assert next(iter(table.values()))["value"] == 5

    def test_removed_values_collectable(self, cvm, item_cls):
        table = HashTable.new(cvm, buckets=4)
        cvm.statics.set_ref("t", table.handle.address)
        with cvm.scope():
            victim = cvm.new(item_cls)
            table.put("v", victim)
        table.remove("v")
        cvm.gc()
        assert not victim.is_live
