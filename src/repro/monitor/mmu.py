"""Minimum mutator utilization (MMU) and utilization timelines.

MMU(w) is the worst-case fraction of any ``w``-second window the mutator
got to run in, given the stop-the-world pause intervals the collector
took (Cheng & Blelloch, PLDI 2001).  It is *the* summary of how a GC's
pauses land on a real-time axis: a 10ms max pause is harmless if pauses
are rare, and crippling if they arrive back-to-back — MMU tells them
apart where a pause histogram cannot.

The computation here is **exact**, not sampled.  Busy time
``busy(s) = Σ overlap(pause, [s, s+w])`` is piecewise linear in the
window start ``s``: its slope only changes where a window edge crosses a
pause edge.  The maximum of a piecewise-linear function over a closed
domain is attained at a breakpoint, so evaluating ``busy`` at every
pause edge and every ``edge - w`` (clipped to the domain), plus the
domain endpoints, finds the true worst window.  Tests pin this against a
brute-force sliding-window oracle with **bit-exact float equality** —
both sides sum overlaps chronologically, so the floating-point result is
identical, not merely close.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ConfigurationError

#: Window widths (seconds) the monitor reports by default — log-spaced
#: from "one frame" to "one human attention span".
DEFAULT_MMU_WINDOWS = (0.001, 0.01, 0.1, 1.0, 10.0)


def merge_intervals(intervals: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    """Normalize pause intervals: sorted, overlaps coalesced, empties dropped.

    Collectors emit pauses in order and non-overlapping, but the math
    must not depend on that (ring-buffer eviction, merged streams).
    """
    cleaned = sorted((s, e) for s, e in intervals if e > s)
    merged: list[tuple[float, float]] = []
    for s, e in cleaned:
        if merged and s <= merged[-1][1]:
            if e > merged[-1][1]:
                merged[-1] = (merged[-1][0], e)
        else:
            merged.append((s, e))
    return merged


def busy_time(intervals: Sequence[tuple[float, float]], start: float, end: float) -> float:
    """Total pause time overlapping ``[start, end]``.

    ``intervals`` must be normalized (:func:`merge_intervals`).  Summation
    is chronological so any two callers computing the same overlap get the
    bit-identical float — this is what makes the oracle test exact.
    """
    total = 0.0
    for s, e in intervals:
        lo = s if s > start else start
        hi = e if e < end else end
        if hi > lo:
            total += hi - lo
    return total


def mmu(
    intervals: Iterable[tuple[float, float]],
    window_s: float,
    t0: float,
    t1: float,
) -> float:
    """Exact MMU for ``window_s``-wide windows over the span ``[t0, t1]``.

    Returns the minimum over all window placements of
    ``(window - busy) / window``.  Windows are clipped to the observed
    span; if the span is shorter than the window, the whole span is the
    single (shortened) window — by convention the utilization of that
    span.  An empty span has utilization 1.0 (no time observed, no time
    stolen).
    """
    if window_s <= 0:
        raise ConfigurationError(f"MMU window must be > 0, got {window_s}")
    if t1 < t0:
        raise ConfigurationError(f"bad span: t1={t1} < t0={t0}")
    merged = merge_intervals(intervals)
    span = t1 - t0
    if span == 0.0:
        return 1.0
    if span <= window_s:
        width = span
        return max(0.0, (width - busy_time(merged, t0, t1)) / width)

    # busy(s) over [s, s+w] is piecewise linear in s; enumerate its
    # breakpoints: each pause edge as a window start, and each pause
    # edge minus w (the window *end* touching the edge), clipped.
    lo, hi = t0, t1 - window_s
    candidates = {lo, hi}
    for s, e in merged:
        for edge in (s, e, s - window_s, e - window_s):
            if lo <= edge <= hi:
                candidates.add(edge)

    worst_busy = 0.0
    for start in sorted(candidates):
        b = busy_time(merged, start, start + window_s)
        if b > worst_busy:
            worst_busy = b
    return max(0.0, (window_s - worst_busy) / window_s)


def mmu_curve(
    intervals: Iterable[tuple[float, float]],
    windows: Iterable[float],
    t0: float,
    t1: float,
) -> list[tuple[float, float]]:
    """``[(window_s, mmu)]`` for each requested window width, sorted."""
    merged = merge_intervals(intervals)
    return [(w, mmu(merged, w, t0, t1)) for w in sorted(windows)]


def utilization_timeline(
    intervals: Iterable[tuple[float, float]],
    t0: float,
    t1: float,
    bucket_s: float,
) -> list[tuple[float, float]]:
    """Mutator utilization per fixed ``bucket_s`` bucket across ``[t0, t1]``.

    Returns ``[(bucket_start, utilization)]``; the final bucket may be
    shorter than ``bucket_s`` and is normalized by its true width.  This
    is the *timeline* view (utilization as a function of when), the
    complement of the MMU curve (worst case as a function of scale).
    """
    if bucket_s <= 0:
        raise ConfigurationError(f"bucket_s must be > 0, got {bucket_s}")
    if t1 < t0:
        raise ConfigurationError(f"bad span: t1={t1} < t0={t0}")
    merged = merge_intervals(intervals)
    out: list[tuple[float, float]] = []
    start = t0
    while start < t1:
        end = min(start + bucket_s, t1)
        width = end - start
        util = (width - busy_time(merged, start, end)) / width
        out.append((start, max(0.0, util)))
        start += bucket_s
    return out
