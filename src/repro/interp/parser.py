"""Recursive-descent parser for MiniJ.

Grammar (EBNF sketch)::

    program     := (class_decl | func_decl)*
    class_decl  := "class" IDENT ["extends" IDENT] "{" (field_decl | method)* "}"
    field_decl  := "var" IDENT ":" type ";"
    func_decl   := "def" IDENT "(" params ")" ":" type block
    type        := IDENT ("[" "]")*
    block       := "{" stmt* "}"
    stmt        := var_decl | if | while | return | assign_or_expr
    var_decl    := "var" IDENT ":" type ["=" expr] ";"
    assign_or_expr := expr ["=" expr] ";"
    expr        := or_expr
    ...the usual precedence ladder: || && == != < <= > >= + - * / % unary postfix
    postfix     := primary ("." IDENT [call-args] | "[" expr "]")*
    primary     := literal | "null" | "this" | IDENT [call-args]
                 | "new" IDENT ( "(" ")" | ("[" expr "]")+ ) | "(" expr ")"
"""

from __future__ import annotations

from typing import Optional

from repro.errors import MiniJSyntaxError
from repro.interp import ast_nodes as ast
from repro.interp.lexer import Token, TokenKind, tokenize


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _expect(self, kind: TokenKind, what: str = "") -> Token:
        token = self._peek()
        if token.kind is not kind:
            expected = what or kind.value
            raise MiniJSyntaxError(
                f"expected {expected}, found {token.text or token.kind.value!s}",
                token.line,
                token.column,
            )
        return self._advance()

    def _match(self, kind: TokenKind) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    # -- program --------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        classes: list[ast.ClassDecl] = []
        functions: list[ast.FuncDecl] = []
        while not self._at(TokenKind.EOF):
            if self._at(TokenKind.CLASS):
                classes.append(self.parse_class())
            elif self._at(TokenKind.DEF):
                functions.append(self.parse_function())
            else:
                token = self._peek()
                raise MiniJSyntaxError(
                    f"expected 'class' or 'def' at top level, found {token.text!r}",
                    token.line,
                    token.column,
                )
        return ast.Program(classes, functions)

    def parse_class(self) -> ast.ClassDecl:
        start = self._expect(TokenKind.CLASS)
        name = self._expect(TokenKind.IDENT, "class name").text
        superclass = None
        if self._match(TokenKind.EXTENDS):
            superclass = self._expect(TokenKind.IDENT, "superclass name").text
        self._expect(TokenKind.LBRACE)
        fields: list[ast.FieldDecl] = []
        methods: list[ast.FuncDecl] = []
        while not self._at(TokenKind.RBRACE):
            if self._at(TokenKind.VAR):
                fields.append(self._parse_field())
            elif self._at(TokenKind.DEF):
                method = self.parse_function()
                method.owner = name
                methods.append(method)
            else:
                token = self._peek()
                raise MiniJSyntaxError(
                    f"expected field or method in class {name!r}, found {token.text!r}",
                    token.line,
                    token.column,
                )
        self._expect(TokenKind.RBRACE)
        return ast.ClassDecl(name, superclass, fields, methods, start.line)

    def _parse_field(self) -> ast.FieldDecl:
        start = self._expect(TokenKind.VAR)
        name = self._expect(TokenKind.IDENT, "field name").text
        self._expect(TokenKind.COLON)
        # `weak` is a contextual modifier, valid only on field types:
        # `var cache: weak Node;` declares a non-retaining slot.
        weak = False
        if (
            self._at(TokenKind.IDENT)
            and self._peek().text == "weak"
            and self._peek(1).kind is TokenKind.IDENT
        ):
            self._advance()
            weak = True
        type_ = self.parse_type()
        type_.weak = weak
        self._expect(TokenKind.SEMI)
        return ast.FieldDecl(name, type_, start.line)

    def parse_function(self) -> ast.FuncDecl:
        start = self._expect(TokenKind.DEF)
        name = self._expect(TokenKind.IDENT, "function name").text
        self._expect(TokenKind.LPAREN)
        params: list[ast.Param] = []
        while not self._at(TokenKind.RPAREN):
            if params:
                self._expect(TokenKind.COMMA)
            pname = self._expect(TokenKind.IDENT, "parameter name").text
            self._expect(TokenKind.COLON)
            params.append(ast.Param(pname, self.parse_type()))
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.COLON)
        return_type = self.parse_type()
        body = self.parse_block()
        return ast.FuncDecl(name, params, return_type, body, start.line)

    def parse_type(self) -> ast.TypeRef:
        name = self._expect(TokenKind.IDENT, "type name").text
        depth = 0
        while self._at(TokenKind.LBRACKET) and self._peek(1).kind is TokenKind.RBRACKET:
            self._advance()
            self._advance()
            depth += 1
        return ast.TypeRef(name, depth)

    # -- statements -------------------------------------------------------------------

    def parse_block(self) -> list[ast.Stmt]:
        self._expect(TokenKind.LBRACE)
        body: list[ast.Stmt] = []
        while not self._at(TokenKind.RBRACE):
            body.append(self.parse_statement())
        self._expect(TokenKind.RBRACE)
        return body

    def parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind is TokenKind.VAR:
            return self._parse_var_decl()
        if token.kind is TokenKind.IF:
            return self._parse_if()
        if token.kind is TokenKind.WHILE:
            return self._parse_while()
        if token.kind is TokenKind.FOR:
            return self._parse_for()
        if token.kind is TokenKind.BREAK:
            self._advance()
            self._expect(TokenKind.SEMI)
            return ast.Break(token.line)
        if token.kind is TokenKind.CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMI)
            return ast.Continue(token.line)
        if token.kind is TokenKind.RETURN:
            return self._parse_return()
        return self._parse_assign_or_expr()

    def _parse_var_decl(self) -> ast.VarDecl:
        start = self._expect(TokenKind.VAR)
        name = self._expect(TokenKind.IDENT, "variable name").text
        self._expect(TokenKind.COLON)
        type_ = self.parse_type()
        init = None
        if self._match(TokenKind.ASSIGN):
            init = self.parse_expression()
        self._expect(TokenKind.SEMI)
        return ast.VarDecl(name, type_, init, start.line)

    def _parse_if(self) -> ast.If:
        start = self._expect(TokenKind.IF)
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expression()
        self._expect(TokenKind.RPAREN)
        then_body = self.parse_block()
        else_body = None
        if self._match(TokenKind.ELSE):
            if self._at(TokenKind.IF):
                else_body = [self._parse_if()]
            else:
                else_body = self.parse_block()
        return ast.If(cond, then_body, else_body, start.line)

    def _parse_while(self) -> ast.While:
        start = self._expect(TokenKind.WHILE)
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expression()
        self._expect(TokenKind.RPAREN)
        body = self.parse_block()
        return ast.While(cond, body, start.line)

    def _parse_for(self) -> ast.For:
        start = self._expect(TokenKind.FOR)
        self._expect(TokenKind.LPAREN)
        init: ast.Stmt | None = None
        if not self._at(TokenKind.SEMI):
            if self._at(TokenKind.VAR):
                init = self._parse_var_decl()  # consumes its ';'
            else:
                init = self._parse_simple_assign_or_expr(start)
                self._expect(TokenKind.SEMI)
        else:
            self._advance()
        cond: ast.Expr | None = None
        if not self._at(TokenKind.SEMI):
            cond = self.parse_expression()
        self._expect(TokenKind.SEMI)
        update: ast.Stmt | None = None
        if not self._at(TokenKind.RPAREN):
            update = self._parse_simple_assign_or_expr(start)
        self._expect(TokenKind.RPAREN)
        body = self.parse_block()
        return ast.For(init, cond, update, body, start.line)

    def _parse_simple_assign_or_expr(self, anchor) -> ast.Stmt:
        """An assignment or expression without the trailing semicolon
        (for-loop init/update clauses)."""
        expr = self.parse_expression()
        if self._match(TokenKind.ASSIGN):
            value = self.parse_expression()
            if not isinstance(expr, (ast.Name, ast.FieldAccess, ast.Index)):
                raise MiniJSyntaxError(
                    "assignment target must be a variable, field, or array element",
                    anchor.line,
                    anchor.column,
                )
            return ast.Assign(expr, value, anchor.line)
        return ast.ExprStmt(expr, anchor.line)

    def _parse_return(self) -> ast.Return:
        start = self._expect(TokenKind.RETURN)
        value = None
        if not self._at(TokenKind.SEMI):
            value = self.parse_expression()
        self._expect(TokenKind.SEMI)
        return ast.Return(value, start.line)

    def _parse_assign_or_expr(self) -> ast.Stmt:
        start = self._peek()
        expr = self.parse_expression()
        if self._match(TokenKind.ASSIGN):
            value = self.parse_expression()
            self._expect(TokenKind.SEMI)
            if not isinstance(expr, (ast.Name, ast.FieldAccess, ast.Index)):
                raise MiniJSyntaxError(
                    "assignment target must be a variable, field, or array element",
                    start.line,
                    start.column,
                )
            return ast.Assign(expr, value, start.line)
        self._expect(TokenKind.SEMI)
        return ast.ExprStmt(expr, start.line)

    # -- expressions --------------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._at(TokenKind.OR):
            line = self._advance().line
            left = ast.Binary("||", left, self._parse_and(), line)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_equality()
        while self._at(TokenKind.AND):
            line = self._advance().line
            left = ast.Binary("&&", left, self._parse_equality(), line)
        return left

    def _parse_equality(self) -> ast.Expr:
        left = self._parse_comparison()
        while self._peek().kind in (TokenKind.EQ, TokenKind.NE):
            token = self._advance()
            left = ast.Binary(token.text, left, self._parse_comparison(), token.line)
        return left

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        while self._peek().kind in (TokenKind.LT, TokenKind.LE, TokenKind.GT, TokenKind.GE):
            token = self._advance()
            left = ast.Binary(token.text, left, self._parse_additive(), token.line)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            token = self._advance()
            left = ast.Binary(token.text, left, self._parse_multiplicative(), token.line)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().kind in (TokenKind.STAR, TokenKind.SLASH, TokenKind.PERCENT):
            token = self._advance()
            left = ast.Binary(token.text, left, self._parse_unary(), token.line)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.MINUS:
            self._advance()
            return ast.Unary("-", self._parse_unary(), token.line)
        if token.kind is TokenKind.NOT:
            self._advance()
            return ast.Unary("!", self._parse_unary(), token.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._at(TokenKind.DOT):
                line = self._advance().line
                name = self._expect(TokenKind.IDENT, "member name").text
                if self._at(TokenKind.LPAREN):
                    args = self._parse_args()
                    expr = ast.MethodCall(expr, name, args, line)
                else:
                    expr = ast.FieldAccess(expr, name, line)
            elif self._at(TokenKind.LBRACKET):
                line = self._advance().line
                index = self.parse_expression()
                self._expect(TokenKind.RBRACKET)
                expr = ast.Index(expr, index, line)
            else:
                return expr

    def _parse_args(self) -> list[ast.Expr]:
        self._expect(TokenKind.LPAREN)
        args: list[ast.Expr] = []
        while not self._at(TokenKind.RPAREN):
            if args:
                self._expect(TokenKind.COMMA)
            args.append(self.parse_expression())
        self._expect(TokenKind.RPAREN)
        return args

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT:
            self._advance()
            return ast.IntLit(token.value, token.line)
        if token.kind is TokenKind.FLOAT:
            self._advance()
            return ast.FloatLit(token.value, token.line)
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.StrLit(token.value, token.line)
        if token.kind is TokenKind.TRUE:
            self._advance()
            return ast.BoolLit(True, token.line)
        if token.kind is TokenKind.FALSE:
            self._advance()
            return ast.BoolLit(False, token.line)
        if token.kind is TokenKind.NULL:
            self._advance()
            return ast.NullLit(token.line)
        if token.kind is TokenKind.THIS:
            self._advance()
            return ast.ThisExpr(token.line)
        if token.kind is TokenKind.NEW:
            return self._parse_new()
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._at(TokenKind.LPAREN):
                args = self._parse_args()
                return ast.Call(token.text, args, token.line)
            return ast.Name(token.text, token.line)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self.parse_expression()
            self._expect(TokenKind.RPAREN)
            return expr
        raise MiniJSyntaxError(
            f"unexpected token {token.text or token.kind.value!r} in expression",
            token.line,
            token.column,
        )

    def _parse_new(self) -> ast.Expr:
        start = self._expect(TokenKind.NEW)
        type_name = self._expect(TokenKind.IDENT, "type name after 'new'").text
        if self._at(TokenKind.LBRACKET):
            self._advance()
            length = self.parse_expression()
            self._expect(TokenKind.RBRACKET)
            depth = 0
            while self._at(TokenKind.LBRACKET) and self._peek(1).kind is TokenKind.RBRACKET:
                self._advance()
                self._advance()
                depth += 1
            return ast.NewArray(ast.TypeRef(type_name, depth), length, start.line)
        self._expect(TokenKind.LPAREN)
        self._expect(TokenKind.RPAREN)
        return ast.NewObject(type_name, start.line)


def parse(source: str) -> ast.Program:
    """Parse a MiniJ program from source text."""
    return Parser(tokenize(source)).parse_program()
