"""Composite heap-health scoring and the machine-readable health report.

One number ("how healthy is this heap, 0–100") plus the evidence behind
it.  The score is a weighted blend of signals the repo already computes
— pause behavior and MMU from the monitor hub, occupancy and sweep debt
from the latest GC event, assertion violations and recovery activity
from telemetry — so the report is a *view*, not a new measurement.

``/health`` serves :func:`health_report` as JSON and maps
:func:`health_status` to an HTTP code: 200 while within SLO, 503 while
any burn-rate alert is firing or a budget is exhausted — the shape load
balancers and CI gates expect.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.monitor.timeseries import MonitorHub

HEALTH_SCHEMA = "repro-health/1"

#: Component weights; must sum to 1.  Pauses and utilization dominate
#: because they are what the mutator actually experiences.
_WEIGHTS = {
    "pauses": 0.30,
    "utilization": 0.25,
    "occupancy": 0.15,
    "sweep_debt": 0.10,
    "violations": 0.10,
    "degradations": 0.10,
}


def _clamp(x: float) -> float:
    return 0.0 if x < 0.0 else (1.0 if x > 1.0 else x)


def _component_scores(hub: "MonitorHub") -> dict[str, float]:
    """Each component scored in [0, 1]; 1 is perfectly healthy."""
    scores: dict[str, float] = {}

    pauses = hub.series["pause_s"].values()
    if pauses:
        recent = pauses[-64:]
        worst = max(recent)
        # 10ms worst-case pause scores 1.0; 200ms scores 0.
        scores["pauses"] = _clamp(1.0 - (worst - 0.010) / 0.190)
    else:
        scores["pauses"] = 1.0

    scores["utilization"] = _clamp(hub.mmu(0.1))

    occupancy = hub.series["occupancy"].latest_value(0.0)
    # Healthy up to 85% occupancy, then linearly to 0 at 100%.
    scores["occupancy"] = _clamp((1.0 - occupancy) / 0.15) if occupancy > 0.85 else 1.0

    debt = hub.series["sweep_debt_chunks"].latest_value(0.0)
    scores["sweep_debt"] = _clamp(1.0 - debt / 256.0)

    violations = sum(hub.series["violations"].values())
    scores["violations"] = 1.0 if violations == 0 else _clamp(1.0 - violations / 10.0)

    degradations = sum(hub.degradations_by_kind.values())
    scores["degradations"] = (
        1.0 if degradations == 0 else _clamp(1.0 - degradations / 8.0)
    )
    return scores


def health_score(hub: "MonitorHub") -> float:
    """Composite heap health in [0, 100]."""
    scores = _component_scores(hub)
    return 100.0 * sum(_WEIGHTS[name] * score for name, score in scores.items())


def health_status(hub: "MonitorHub") -> tuple[str, int]:
    """``(state, http_code)``: SLO state decides serving health.

    The composite score is diagnostic; the *contract* is the SLO set.
    No SLO set attached means health is score-only: degraded under 50.
    """
    if hub.slos is not None:
        if not hub.slos.healthy():
            return "unhealthy", 503
        return "ok", 200
    return ("ok", 200) if health_score(hub) >= 50.0 else ("unhealthy", 503)


def health_report(hub: "MonitorHub") -> dict:
    """The machine-readable report ``/health`` serves (schema-stamped)."""
    state, http_code = health_status(hub)
    scores = _component_scores(hub)
    latest = hub.series["pause_s"].latest()
    vm = hub.vm
    telemetry = vm.telemetry if vm is not None else None

    pauses = hub.series["pause_s"].values()
    recent = pauses[-256:]
    pause_block = {
        "count": len(pauses),
        "max_s": max(recent) if recent else 0.0,
        "mean_s": (sum(recent) / len(recent)) if recent else 0.0,
        "p99_s": _quantile(recent, 0.99),
    }

    report = {
        "schema": HEALTH_SCHEMA,
        "status": state,
        "http_code": http_code,
        "score": round(health_score(hub), 2),
        "components": {name: round(score, 4) for name, score in scores.items()},
        "uptime_s": hub.uptime_s(),
        "gc_events": hub.gc_events_seen,
        "last_gc_mono": latest[0] if latest is not None else None,
        "pauses": pause_block,
        "mmu": {
            f"{int(w * 1e3)}ms": mmu_value
            for w, mmu_value in hub.mmu_points((0.01, 0.1, 1.0))
        },
        "utilization_now": hub.utilization_now(),
        "heap_live_bytes": int(hub.series["heap_live_bytes"].latest_value(0.0)),
        "occupancy": hub.series["occupancy"].latest_value(0.0),
        "sweep_debt_chunks": int(hub.series["sweep_debt_chunks"].latest_value(0.0)),
        "quarantine_depth": int(hub.series["quarantine_depth"].latest_value(0.0)),
        "violations_total": int(sum(hub.series["violations"].values())),
        "degradations": dict(hub.degradations_by_kind),
        "alerts_seen": len(hub.alerts),
        "slo": hub.slos.status() if hub.slos is not None else None,
    }
    if telemetry is not None and telemetry.enabled:
        census = telemetry.census.latest()
        if census:
            top = sorted(census.items(), key=lambda kv: -kv[1][1])[:5]
            report["top_classes_by_bytes"] = [
                {"class": name, "objects": count, "bytes": nbytes}
                for name, (count, nbytes) in top
            ]
    return report


def validate_health_report(report: dict) -> list[str]:
    """Schema check for CI: returns problem strings (empty = valid)."""
    problems: list[str] = []
    if report.get("schema") != HEALTH_SCHEMA:
        problems.append(f"schema is {report.get('schema')!r}, want {HEALTH_SCHEMA!r}")
    for key, types in (
        ("status", str), ("http_code", int), ("score", (int, float)),
        ("components", dict), ("uptime_s", (int, float)), ("gc_events", int),
        ("pauses", dict), ("mmu", dict), ("utilization_now", (int, float)),
        ("heap_live_bytes", int), ("occupancy", (int, float)),
        ("sweep_debt_chunks", int), ("quarantine_depth", int),
        ("violations_total", int),
        ("degradations", dict), ("alerts_seen", int),
    ):
        if key not in report:
            problems.append(f"missing key {key!r}")
        elif not isinstance(report[key], types):
            problems.append(
                f"{key!r} has type {type(report[key]).__name__}, want {types}"
            )
    if report.get("status") not in ("ok", "unhealthy"):
        problems.append(f"bad status {report.get('status')!r}")
    if report.get("http_code") not in (200, 503):
        problems.append(f"bad http_code {report.get('http_code')!r}")
    score = report.get("score")
    if isinstance(score, (int, float)) and not 0.0 <= score <= 100.0:
        problems.append(f"score {score} outside [0, 100]")
    components = report.get("components")
    if isinstance(components, dict):
        missing = set(_WEIGHTS) - set(components)
        if missing:
            problems.append(f"components missing {sorted(missing)}")
    slo = report.get("slo")
    if slo is not None and not (
        isinstance(slo, dict) and slo.get("schema", "").startswith("repro-slo/")
    ):
        problems.append("slo block present but not a repro-slo document")
    return problems


def _quantile(values: list[float], q: float) -> float:
    """Nearest-rank quantile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]
