"""GC assertions: using the garbage collector to check heap properties.

A from-scratch Python reproduction of Aftandilian & Guyer (PLDI 2009).

The package builds a complete managed runtime — object model, tracing
collectors, threads, a small class-based language — and implements the
paper's contribution on top of it: an assertion interface checked by the
garbage collector during its normal tracing work.

Quickstart::

    from repro import VirtualMachine, FieldKind

    vm = VirtualMachine()
    node = vm.define_class("Node", [("next", FieldKind.REF)])
    with vm.scope():
        head = vm.new(node)
        vm.statics.set_ref("head", head.address)
        vm.assertions.assert_dead(head, site="quickstart")
    vm.gc()
    for line in vm.assertions.violations.lines:
        print(line)
"""

from repro.core import (
    AssertionKind,
    GcAssertions,
    HeapPath,
    Reaction,
    ReactionPolicy,
    Violation,
    ViolationLog,
)
from repro.errors import (
    AssertionUsageError,
    AssertionViolationHalt,
    OutOfMemoryError,
    ReproError,
    UseAfterFreeError,
)
from repro.heap import ClassDescriptor, FieldKind, HeapObject
from repro.runtime import Handle, MutatorThread, Scheduler, VirtualMachine
from repro.telemetry import GcEvent, Telemetry

__version__ = "1.0.0"

__all__ = [
    "AssertionKind",
    "GcAssertions",
    "HeapPath",
    "Reaction",
    "ReactionPolicy",
    "Violation",
    "ViolationLog",
    "AssertionUsageError",
    "AssertionViolationHalt",
    "OutOfMemoryError",
    "ReproError",
    "UseAfterFreeError",
    "ClassDescriptor",
    "FieldKind",
    "HeapObject",
    "Handle",
    "MutatorThread",
    "Scheduler",
    "VirtualMachine",
    "GcEvent",
    "Telemetry",
    "__version__",
]
