"""assert-ownedby (§2.5.2): the two-phase ownership scan."""

import pytest

from repro.core.reporting import AssertionKind
from repro.errors import AssertionUsageError
from repro.heap import header as hdr
from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine


@pytest.fixture
def container_classes(vm):
    container = vm.define_class(
        "Container", [("items", FieldKind.REF), ("name", FieldKind.STR)]
    )
    element = vm.define_class("Element", [("id", FieldKind.INT)])
    return container, element


def build_container(vm, container, element, count, root="db"):
    with vm.scope():
        cont = vm.new(container)
        arr = vm.new_array(element, count)
        cont["items"] = arr
        vm.statics.set_ref(root, cont.address)
        elements = []
        for i in range(count):
            e = vm.new(element, id=i)
            arr[i] = e
            elements.append(e)
    return vm.handle(cont.obj), elements


class TestOwnedBy:
    def test_owned_elements_pass(self, vm, container_classes):
        container, element = container_classes
        cont, elements = build_container(vm, container, element, 4)
        for e in elements:
            vm.assertions.assert_ownedby(cont, e)
        vm.gc()
        assert len(vm.engine.log) == 0

    def test_extra_reference_is_allowed_while_owner_path_exists(self, vm, container_classes):
        """'An ownee may be referenced by other objects' — only losing the
        owner path is an error."""
        container, element = container_classes
        cont, elements = build_container(vm, container, element, 2)
        vm.statics.set_ref("cache", elements[0].address)
        vm.assertions.assert_ownedby(cont, elements[0])
        vm.gc()
        assert len(vm.engine.log) == 0

    def test_element_only_in_cache_triggers(self, vm, container_classes):
        container, element = container_classes
        cont, elements = build_container(vm, container, element, 3)
        vm.statics.set_ref("cache", elements[1].address)
        for e in elements:
            vm.assertions.assert_ownedby(cont, e)
        cont["items"][1] = None  # removed from container, still cached
        vm.gc()
        violations = vm.engine.log.of_kind(AssertionKind.OWNED_BY)
        assert len(violations) == 1
        assert violations[0].address == elements[1].obj.address
        assert "cache" in violations[0].path.root_description

    def test_element_reclaimed_with_owner_path_is_fine(self, vm, container_classes):
        container, element = container_classes
        cont, elements = build_container(vm, container, element, 2)
        for e in elements:
            vm.assertions.assert_ownedby(cont, e)
        cont["items"][0] = None  # removed and unreferenced: dies quietly
        vm.gc()
        assert len(vm.engine.log) == 0
        assert vm.assertions.live_ownees() == 1

    def test_owner_and_ownee_header_bits(self, vm, container_classes):
        container, element = container_classes
        cont, elements = build_container(vm, container, element, 1)
        vm.assertions.assert_ownedby(cont, elements[0])
        assert cont.obj.test(hdr.OWNER_BIT)
        assert elements[0].obj.test(hdr.OWNEE_BIT)

    def test_self_ownership_rejected(self, vm, container_classes):
        container, element = container_classes
        cont, _ = build_container(vm, container, element, 1)
        with pytest.raises(AssertionUsageError):
            vm.assertions.assert_ownedby(cont, cont)

    def test_two_owners_for_same_ownee_rejected(self, vm, container_classes):
        container, element = container_classes
        cont_a, elements = build_container(vm, container, element, 1, root="a")
        cont_b, _ = build_container(vm, container, element, 1, root="b")
        vm.assertions.assert_ownedby(cont_a, elements[0])
        with pytest.raises(AssertionUsageError):
            vm.assertions.assert_ownedby(cont_b, elements[0])

    def test_reassert_same_pair_idempotent(self, vm, container_classes):
        container, element = container_classes
        cont, elements = build_container(vm, container, element, 1)
        vm.assertions.assert_ownedby(cont, elements[0])
        vm.assertions.assert_ownedby(cont, elements[0])
        record = vm.engine.registry.owners[cont.obj.address]
        assert len(record) == 1

    def test_multiple_owners_with_disjoint_regions(self, vm, container_classes):
        container, element = container_classes
        cont_a, elements_a = build_container(vm, container, element, 2, root="a")
        cont_b, elements_b = build_container(vm, container, element, 2, root="b")
        for e in elements_a:
            vm.assertions.assert_ownedby(cont_a, e)
        for e in elements_b:
            vm.assertions.assert_ownedby(cont_b, e)
        vm.gc()
        assert len(vm.engine.log) == 0

    def test_reclaimed_ownee_purged_from_registry(self, vm, container_classes):
        """'We must remove each unreachable ownee after a GC.'"""
        container, element = container_classes
        cont, elements = build_container(vm, container, element, 3)
        for e in elements:
            vm.assertions.assert_ownedby(cont, e)
        cont["items"][0] = None
        cont["items"][2] = None
        vm.gc()
        assert vm.assertions.live_ownees() == 1
        assert vm.engine.registry.ownees_reclaimed == 2

    def test_dead_owner_record_dropped_without_spurious_reports(
        self, vm, container_classes
    ):
        container, element = container_classes
        cont, elements = build_container(vm, container, element, 2)
        for e in elements:
            vm.assertions.assert_ownedby(cont, e)
        vm.statics.drop_ref("db")
        vm.gc()  # owner dies; ownees float for one GC
        assert len(vm.engine.log) == 0
        assert len(vm.engine.registry.owners) == 0
        vm.gc()  # floating ownees die quietly
        assert len(vm.engine.log) == 0
        assert vm.heap.stats.objects_live == 0

    def test_retract_ownedby(self, vm, container_classes):
        container, element = container_classes
        cont, elements = build_container(vm, container, element, 1)
        vm.assertions.assert_ownedby(cont, elements[0])
        vm.statics.set_ref("cache", elements[0].address)
        cont["items"][0] = None
        assert vm.assertions.retract_ownedby(elements[0])
        vm.gc()
        assert len(vm.engine.log) == 0
        assert not elements[0].obj.test(hdr.OWNEE_BIT)


class TestOwnershipPhaseMechanics:
    def test_no_retrace_of_owner_subgraph(self, vm, container_classes):
        """Owner-reachable objects are marked in phase 1 and not traced again."""
        container, element = container_classes
        cont, elements = build_container(vm, container, element, 5)
        for e in elements:
            vm.assertions.assert_ownedby(cont, e)
        vm.gc()
        live = vm.heap.stats.objects_live
        # Every live object is traced exactly once across both phases.
        assert vm.stats.objects_traced == live

    def test_floating_garbage_from_dead_owner(self, vm, container_classes):
        """§2.5.2: objects reachable only from a dead owner survive one GC."""
        container, element = container_classes
        cont, elements = build_container(vm, container, element, 3)
        for e in elements:
            vm.assertions.assert_ownedby(cont, e)
        vm.statics.drop_ref("db")
        vm.gc()
        # The owner itself died, but its phase-1-marked subgraph floats.
        assert not cont.is_live
        assert all(e.is_live for e in elements)
        vm.gc()
        assert all(not e.is_live for e in elements)

    def test_back_edges_tolerated(self, vm):
        """Ownees with back edges to the owner's structure must not loop."""
        container = vm.define_class("C2", [("items", FieldKind.REF)])
        element = vm.define_class("E2", [("parent", FieldKind.REF), ("peer", FieldKind.REF)])
        with vm.scope():
            cont = vm.new(container)
            arr = vm.new_array(element, 2)
            cont["items"] = arr
            vm.statics.set_ref("c2", cont.address)
            a = vm.new(element)
            b = vm.new(element)
            arr[0] = a
            arr[1] = b
            a["parent"] = cont  # back edge to the owner
            a["peer"] = b       # ownee -> ownee edge
            b["peer"] = a
            vm.assertions.assert_ownedby(cont, a)
            vm.assertions.assert_ownedby(cont, b)
        vm.gc()
        assert len(vm.engine.log) == 0

    def test_ownee_search_probes_counted(self, vm, container_classes):
        container, element = container_classes
        cont, elements = build_container(vm, container, element, 8)
        for e in elements:
            vm.assertions.assert_ownedby(cont, e)
        vm.gc()
        assert vm.stats.ownee_lookups >= 8
        assert vm.stats.ownee_search_probes >= vm.stats.ownee_lookups

    def test_ownees_checked_counter(self, vm, container_classes):
        container, element = container_classes
        cont, elements = build_container(vm, container, element, 6)
        for e in elements:
            vm.assertions.assert_ownedby(cont, e)
        vm.gc()
        assert vm.stats.ownees_checked == 6


class TestNaiveAblation:
    def test_naive_mode_detects_same_violations(self, container_classes):
        for mode in ("two-phase", "naive"):
            vm = VirtualMachine(heap_bytes=4 << 20, ownership_mode=mode)
            container = vm.define_class("C", [("items", FieldKind.REF)])
            element = vm.define_class("E", [("id", FieldKind.INT)])
            cont, elements = build_container(vm, container, element, 3)
            vm.statics.set_ref("cache", elements[1].address)
            for e in elements:
                vm.assertions.assert_ownedby(cont, e)
            cont["items"][1] = None
            vm.gc()
            violations = vm.engine.log.of_kind(AssertionKind.OWNED_BY)
            assert len(violations) == 1, mode

    def test_naive_mode_does_more_work(self, container_classes):
        def visits(mode):
            vm = VirtualMachine(heap_bytes=4 << 20, ownership_mode=mode)
            container = vm.define_class("C", [("items", FieldKind.REF)])
            element = vm.define_class("E", [("id", FieldKind.INT)])
            cont, elements = build_container(vm, container, element, 20)
            for e in elements:
                vm.assertions.assert_ownedby(cont, e)
            vm.gc()
            return vm.stats.naive_ownership_visits, vm.stats.objects_traced

        naive_visits, _ = visits("naive")
        zero_visits, traced = visits("two-phase")
        assert zero_visits == 0
        assert naive_visits > traced  # per-pair re-tracing blows up


class TestSelfSustainingOwner:
    """Root-less owner regions with a back edge to the owner (the leak the
    small-scope model checker found: phase 1 marks the owner from its own
    registry entry every GC, so without the post-mark re-judging the whole
    region floats forever)."""

    def _cycle_vm(self, rooted: bool):
        vm = VirtualMachine(heap_bytes=1 << 20)
        node = vm.define_class("ONode", [("next", FieldKind.REF)])
        with vm.scope("cycle"):
            owner = vm.new(node)
            ownee = vm.new(node)
            owner["next"] = ownee
            ownee["next"] = owner  # back edge: owner reachable from its region
            vm.assertions.assert_ownedby(owner, ownee)
            if rooted:
                vm.statics.set_ref("keep", owner.address)
        return vm, owner.obj.address, ownee.obj.address

    def test_rootless_owner_cycle_is_reclaimed(self):
        vm, owner_address, ownee_address = self._cycle_vm(rooted=False)
        vm.gc()
        vm.gc()  # a self-sustaining region would re-mark itself here forever
        assert not vm.heap.contains(owner_address)
        assert not vm.heap.contains(ownee_address)

    def test_rooted_owner_cycle_survives(self):
        vm, owner_address, ownee_address = self._cycle_vm(rooted=True)
        vm.gc()
        vm.gc()
        assert vm.heap.contains(owner_address)
        assert vm.heap.contains(ownee_address)
