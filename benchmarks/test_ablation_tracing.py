"""Ablation abl-tracing: the cost of in-pause span tracing.

The tracing subsystem's acceptance bar: recording every phase span,
assertion instant, and sweep-debt counter must add no more than a few
percent to GC time, because each span is two tuple appends sharing the
``perf_counter`` readings the phase timers already take.  With tracing off
the recorder must be entirely inert — one ``is None`` attribute test per
phase, identical work counters, no span objects allocated anywhere.
"""

from __future__ import annotations

from benchmarks.conftest import trials
from repro.bench.methodology import confidence_interval_90, mean
from repro.gc import base as gc_base
from repro.runtime.vm import VirtualMachine
from repro.workloads.suite import HEAP_BUDGETS
from repro.workloads.synthetic import PROFILES, run_synthetic

PROFILE = "bloat"  # the GC-heaviest suite member, as in abl-snapshot

#: Wall-clock bound for the span recorder, with headroom over the ~2%
#: acceptance target for interpreter jitter on loaded CI machines.  The
#: counter-identity assertion is the hard gate.
MAX_GC_TIME_RATIO = 1.5


def _run(tracing: bool):
    vm = VirtualMachine(
        heap_bytes=HEAP_BUDGETS[PROFILE],
        assertions=False,
        telemetry=False,
        tracing=tracing,
    )
    run_synthetic(vm, PROFILES[PROFILE])
    vm.collector.sweep_all()
    spans = vm.span_tracer.spans_ended if vm.span_tracer is not None else 0
    return vm.stats.gc_seconds, vm.stats.snapshot(), spans


def test_span_tracing_overhead(once, figure_report):
    def run():
        traced = [_run(True) for _ in range(trials())]
        plain = [_run(False) for _ in range(trials())]
        return traced, plain

    traced, plain = once(run)
    on_times = [t for t, _s, _n in traced]
    off_times = [t for t, _s, _n in plain]
    ratio = mean(on_times) / mean(off_times)
    figure_report.append(
        "Ablation abl-tracing (every-phase spans on/off, GC time on 'bloat'):\n"
        f"  off: {mean(off_times) * 1e3:.1f} ms ±{confidence_interval_90(off_times) * 1e3:.1f}\n"
        f"  on:  {mean(on_times) * 1e3:.1f} ms ±{confidence_interval_90(on_times) * 1e3:.1f}\n"
        f"  ratio: {ratio:.3f} ({traced[0][2]} spans per run; "
        "target <=1.02, asserted <=1.5 for CI noise)"
    )
    assert ratio < MAX_GC_TIME_RATIO

    # Spans observe the phases without changing them: every deterministic
    # work counter is identical whether the recorder is installed or not.
    assert traced[0][1]["counters"] == plain[0][1]["counters"]

    # And the traced leg actually recorded spans on every collection.
    assert traced[0][2] >= traced[0][1]["counters"]["collections"]


def test_tracing_off_is_inert(once):
    """Without ``tracing=True`` the recorder is unreachable from hot paths."""

    def run():
        vm = VirtualMachine(
            heap_bytes=HEAP_BUDGETS[PROFILE], assertions=False, telemetry=False
        )
        run_synthetic(vm, PROFILES[PROFILE])
        return vm

    vm = once(run)
    assert vm.span_tracer is None
    assert vm.collector.span_tracer is None
    # The disabled span helper returns the module-level no-op singleton:
    # no object is allocated per phase when tracing is off.
    assert vm.collector._span("collect") is gc_base._NOOP_SPAN
