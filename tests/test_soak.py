"""Soak test: a long mixed workload on a small heap, fully verified.

Runs every workload family back to back on one VM per collector, with all
assertion kinds registered, under enough allocation pressure to force many
collections — then verifies heap integrity and assertion-registry hygiene.
This is the closest thing to the paper's "deployed setting" claim: the
machinery must survive sustained, heterogeneous use.
"""

import pytest

from repro.core.reporting import AssertionKind
from repro.gc.verify import verify_heap
from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine
from repro.workloads.containers import HashTable, Vector
from repro.workloads.jbb.btree import LongBTree


@pytest.mark.parametrize("collector", ["marksweep", "semispace", "generational"])
def test_mixed_soak(collector):
    vm = VirtualMachine(heap_bytes=192 << 10, collector=collector)
    cls = vm.define_class(
        "Item", [("id", FieldKind.INT), ("link", FieldKind.REF)]
    )

    # Long-lived structures, all monitored by assertions.
    tree = LongBTree.new(vm, degree=3)
    vm.statics.set_ref("soak.tree", tree.handle.address)
    table = HashTable.new(vm, buckets=16)
    vm.statics.set_ref("soak.table", table.handle.address)
    registry = Vector.new(vm)
    vm.statics.set_ref("soak.registry", registry.handle.address)
    vm.assertions.assert_instances(HashTable.CLASS, 1)
    vm.assertions.assert_unshared(table.handle, site="soak: table is private")

    serial = 0
    for round_index in range(60):
        # Phase 1: build a batch into the tree, asserting ownership.
        with vm.scope("soak-build"):
            for _ in range(10):
                item = vm.new(cls, id=serial)
                tree.insert(serial, item)
                vm.assertions.assert_ownedby(tree.handle, item, site="soak.insert")
                serial += 1
        # Phase 2: retire the oldest batch; retired items must die.
        if serial > 30:
            for key in tree.first_keys(10):
                retired = tree.remove(key)
                vm.assertions.retract_ownedby(retired)
                vm.assertions.assert_dead(retired, site="soak.retire")
        # Phase 3: regioned temporary churn.
        vm.assertions.start_region(label=f"soak-{round_index}")
        with vm.scope("soak-temp"):
            for i in range(8):
                vm.new(cls, id=-i)
        vm.assertions.assert_alldead(site=f"soak-{round_index} end")
        # Phase 4: table churn.
        with vm.scope("soak-table"):
            table.put(f"k{round_index % 12}", vm.new(cls, id=serial))
        if round_index % 5 == 4:
            table.remove(f"k{(round_index - 2) % 12}")

    vm.gc(reason="soak final")
    vm.gc(reason="soak settle")

    # No violations: every lifetime expectation held.
    violations = [
        v for v in vm.engine.log if v.kind is not AssertionKind.INSTANCES
    ]
    assert violations == []
    assert len(vm.engine.log.of_kind(AssertionKind.INSTANCES)) == 0

    # The collector worked hard...
    assert vm.stats.collections >= 2
    # ...and left a perfectly consistent heap and registry.
    assert verify_heap(vm) == []
    tree.check_invariants()
    assert vm.assertions.live_ownees() == len(tree)


def test_soak_with_violations_keeps_integrity():
    """Sustained *buggy* behavior (every retired item leaks) must produce a
    steady violation stream without ever corrupting collector state."""
    vm = VirtualMachine(heap_bytes=256 << 10)
    cls = vm.define_class("Leak", [("id", FieldKind.INT)])
    keep = Vector.new(vm)
    vm.statics.set_ref("keep", keep.handle.address)
    sink = Vector.new(vm)
    vm.statics.set_ref("sink", sink.handle.address)

    for round_index in range(25):
        with vm.scope():
            item = vm.new(cls, id=round_index)
            keep.append(item)
        victim = keep.remove_at(0)
        sink.append(victim)  # the leak
        vm.assertions.assert_dead(victim, site="retire")
        vm.gc()

    assert len(vm.engine.log) > 20
    # Every violation carries a usable path into the sink.
    for violation in vm.engine.log:
        assert violation.path is not None
        assert "sink" in violation.path.root_description
    assert verify_heap(vm) == []
