"""The programmer-facing GC-assertion interface.

These are the calls the paper adds to the language runtime (§2): they are
*registrations*, not immediate checks — "when GC assertions are executed
they convey their information to the garbage collector, which checks them
during the next collection cycle."  Each call does only the cheap mutator-
side work the paper describes (setting a spare header bit, appending to a
per-thread queue, updating per-class words) and returns immediately.

Targets may be :class:`~repro.runtime.handles.Handle` objects,
:class:`~repro.heap.object_model.HeapObject` instances, or raw integer
addresses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from repro.core.reporting import AssertionKind
from repro.errors import AssertionUsageError
from repro.heap import header as hdr
from repro.heap.object_model import ClassDescriptor, HeapObject

if TYPE_CHECKING:
    from repro.runtime.handles import Handle
    from repro.runtime.threads import MutatorThread
    from repro.runtime.vm import VirtualMachine

Target = Union["Handle", HeapObject, int]


class GcAssertions:
    """Assertion API bound to one VM (``vm.assertions``)."""

    def __init__(self, vm: "VirtualMachine"):
        self._vm = vm
        if vm.engine is None:
            raise AssertionUsageError(
                "this VM was built without the assertion infrastructure "
                "(assertions=False); GC assertions are unavailable"
            )
        self._engine = vm.engine

    # -- helpers ---------------------------------------------------------------

    def _resolve(self, target: Target) -> HeapObject:
        if isinstance(target, HeapObject):
            obj = target
        elif isinstance(target, int):
            obj = self._vm.heap.get(target)
        else:  # Handle or anything exposing .obj
            obj = getattr(target, "obj", None)
            if obj is None:
                raise AssertionUsageError(f"cannot resolve assertion target {target!r}")
        if obj.is_freed:
            raise AssertionUsageError(f"assertion target {obj!r} was already reclaimed")
        return obj

    @property
    def _gc_number(self) -> int:
        return self._vm.collector.stats.collections

    def _lifecycle(self, stage: str, kind: AssertionKind, **args) -> None:
        """Emit an assertion-lifecycle instant (``assertion_register`` /
        ``assertion_armed``) when the VM records spans; free otherwise.
        The checked/violated ends of the lifecycle are emitted by the
        engine at collection time."""
        spans = self._vm.span_tracer
        if spans is not None:
            spans.instant(f"assertion_{stage}", cat="assertion", kind=kind.value, **args)

    # -- lifetime assertions (§2.3) -----------------------------------------------

    def assert_dead(self, target: Target, site: str = "<unknown site>") -> None:
        """Trigger at the next GC if ``target`` is still reachable (§2.3.1).

        Mutator-side cost: one spare header bit plus a registry entry for
        diagnostics.
        """
        obj = self._resolve(target)
        obj.set(hdr.DEAD_BIT)
        self._engine.registry.register_dead(obj.address, site, self._gc_number)
        self._engine.registry.calls[AssertionKind.DEAD] += 1
        # assert-dead registers and arms in one call: the header bit is set,
        # so the very next collection will check it.
        self._lifecycle("register", AssertionKind.DEAD, site=site)
        self._lifecycle("armed", AssertionKind.DEAD, site=site)

    def start_region(
        self,
        thread: Optional["MutatorThread"] = None,
        label: Optional[str] = None,
    ) -> None:
        """Begin an alldead region on ``thread`` (§2.3.2).

        Every object the thread allocates until :meth:`assert_alldead` is
        recorded in the thread's region queue.
        """
        thread = thread or self._vm.current_thread
        thread.begin_region(label)
        # A region registers intent now but arms only at assert_alldead.
        self._lifecycle("register", AssertionKind.ALLDEAD, label=label)

    def assert_alldead(
        self,
        thread: Optional["MutatorThread"] = None,
        site: str = "<region end>",
    ) -> int:
        """End the region: every queued object must die by the next GC.

        "The region flag is reset and the queue is processed, calling
        assert-dead on each object in the queue." (§2.3.2)  Returns the
        number of objects asserted dead.
        """
        thread = thread or self._vm.current_thread
        queue = thread.end_region()
        heap = self._vm.heap
        registry = self._engine.registry
        registry.calls[AssertionKind.ALLDEAD] += 1
        asserted = 0
        for address in queue:
            obj = heap.maybe(address)
            if obj is None or obj.is_freed:
                continue  # already reclaimed: trivially satisfied
            obj.set(hdr.DEAD_BIT)
            registry.register_dead(address, site, self._gc_number, AssertionKind.ALLDEAD)
            registry.calls[AssertionKind.DEAD] += 1
            asserted += 1
        self._lifecycle("armed", AssertionKind.ALLDEAD, site=site, objects=asserted)
        return asserted

    # -- volume assertions (§2.4) ----------------------------------------------------

    def assert_instances(self, cls: Union[ClassDescriptor, str], limit: int) -> None:
        """Trigger when live instances of ``cls`` exceed ``limit`` at a GC.

        "Passing 0 for I checks that no instances of a particular class
        exist (at GC time)." (§2.4.1)
        """
        if isinstance(cls, str):
            cls = self._vm.classes.get(cls)
        self._vm.classes.track_instances(cls, limit)
        self._engine.registry.calls[AssertionKind.INSTANCES] += 1
        self._lifecycle("register", AssertionKind.INSTANCES, type=cls.name, limit=limit)
        self._lifecycle("armed", AssertionKind.INSTANCES, type=cls.name, limit=limit)

    # -- ownership assertions (§2.5) ----------------------------------------------------

    def assert_unshared(self, target: Target, site: str = "<unknown site>") -> None:
        """Trigger if ``target`` ever has more than one incoming pointer (§2.5.1)."""
        obj = self._resolve(target)
        obj.set(hdr.UNSHARED_BIT)
        self._engine.registry.register_unshared(obj.address, site)
        self._engine.registry.calls[AssertionKind.UNSHARED] += 1
        self._lifecycle("register", AssertionKind.UNSHARED, site=site)
        self._lifecycle("armed", AssertionKind.UNSHARED, site=site)

    def assert_ownedby(
        self,
        owner: Target,
        ownee: Target,
        site: str = "<unknown site>",
    ) -> None:
        """Trigger if ``ownee`` becomes unreachable from ``owner`` (§2.5.2).

        "Once ownership is asserted, the set of paths through the heap to
        the ownee must include at least one path that passes through the
        owner [...] an ownee may be referenced by other objects, but it
        should never outlive its owner."
        """
        owner_obj = self._resolve(owner)
        ownee_obj = self._resolve(ownee)
        self._engine.registry.register_owned_by(
            owner_obj.address, ownee_obj.address, site
        )
        owner_obj.set(hdr.OWNER_BIT)
        ownee_obj.set(hdr.OWNEE_BIT)
        self._engine.registry.calls[AssertionKind.OWNED_BY] += 1
        self._lifecycle("register", AssertionKind.OWNED_BY, site=site)
        self._lifecycle("armed", AssertionKind.OWNED_BY, site=site)

    def retract_ownedby(self, ownee: Target) -> bool:
        """Withdraw an ownership assertion (extension; not in the paper).

        Useful when an object is legitimately handed off to a new owner.
        Returns True if an assertion was retracted.
        """
        obj = self._resolve(ownee)
        registry = self._engine.registry
        owner_address = registry.owner_of(obj.address)
        if owner_address is None:
            return False
        record = registry.owners.get(owner_address)
        if record is not None:
            record.remove(obj.address)
            if not record.ownees:
                del registry.owners[owner_address]
                owner_obj = self._vm.heap.maybe(owner_address)
                if owner_obj is not None:
                    owner_obj.clear(hdr.OWNER_BIT)
        registry.ownee_owner.pop(obj.address, None)
        obj.clear(hdr.OWNEE_BIT)
        return True

    def retract_dead(self, target: Target) -> bool:
        """Withdraw an assert-dead (extension; not in the paper)."""
        obj = self._resolve(target)
        if self._engine.registry.dead_sites.pop(obj.address, None) is None:
            return False
        obj.clear(hdr.DEAD_BIT)
        return True

    # -- introspection --------------------------------------------------------------------

    @property
    def violations(self):
        """All violations recorded so far (a :class:`ViolationLog`)."""
        return self._engine.log

    def call_counts(self) -> dict[str, int]:
        return {k.value: v for k, v in self._engine.registry.calls.items()}

    def pending_dead(self) -> int:
        return len(self._engine.registry.dead_sites)

    def live_ownees(self) -> int:
        return self._engine.registry.live_ownee_count()
