"""Blocking ``repro-wire/1`` client (load generator, tests, scripting).

A thin socket wrapper: :meth:`send` frames out, :meth:`recv` frames in
(via the shared :class:`~repro.service.wire.FrameDecoder`), plus the
:meth:`recv_until` helper that collects streamed violation / GC-event
frames while waiting for a terminal frame type.  Deliberately
synchronous — each load-generator session is one thread driving one
connection, the same shape as a real client library.

The client is also the origin of distributed traces: construct it with
``trace=TraceContext.new()`` (or ``trace=True`` for a random root) and
every ``open``/``submit`` frame is stamped with ``trace_id`` /
``parent_span_id``, which the server parents its request span under.
Inbound session frames run through a
:class:`~repro.service.wire.SequenceTracker`, so frames the server shed
under backpressure show up in :attr:`seq_gaps` rather than vanishing.
"""

from __future__ import annotations

import socket
from collections import deque
from typing import Optional, Union

from repro.errors import WireProtocolError
from repro.service.wire import FrameDecoder, SequenceTracker, encode_frame
from repro.tracing.distributed import TraceContext


class ServiceClient:
    """One connection to an assertion service."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        trace: Union[None, bool, TraceContext] = None,
    ):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.decoder = FrameDecoder()
        if trace is True:
            trace = TraceContext.new()
        self.trace: Optional[TraceContext] = trace or None
        self.seq = SequenceTracker()
        self._pending: deque = deque()

    def send(self, frame: dict) -> None:
        self.sock.sendall(encode_frame(frame))

    def recv(self) -> dict:
        """Next frame, blocking; raises WireProtocolError on server EOF."""
        while not self._pending:
            data = self.sock.recv(1 << 16)
            if not data:
                self.decoder.finish()
                raise WireProtocolError("server closed the connection")
            for frame in self.decoder.feed(data):
                self.seq.observe(frame)
                self._pending.append(frame)
        return self._pending.popleft()

    @property
    def seq_gaps(self) -> dict:
        """Per-session count of frames the server numbered but never delivered."""
        return dict(self.seq.gaps)

    @property
    def frames_missed(self) -> int:
        return self.seq.total_gaps

    def recv_until(
        self, *types: str, collect: Optional[list] = None
    ) -> dict:
        """Read frames until one of ``types``; others go to ``collect``."""
        while True:
            frame = self.recv()
            if frame.get("type") in types:
                return frame
            if collect is not None:
                collect.append(frame)

    # -- protocol helpers ---------------------------------------------------------------

    def hello(self) -> dict:
        self.send({"type": "hello", "schema": "repro-wire/1"})
        return self.recv_until("welcome")

    def open(
        self,
        tenant: str,
        workload: str,
        asserted: bool = True,
        overrides: Optional[dict] = None,
        collector: str = "marksweep",
        wait: bool = False,
    ) -> dict:
        """Open a session; returns the ``opened`` or ``rejected`` frame."""
        frame = {
            "type": "open", "tenant": tenant, "workload": workload,
            "asserted": asserted, "overrides": overrides or {},
            "collector": collector, "wait": wait,
        }
        if self.trace is not None:
            self.trace.stamp(frame)
        self.send(frame)
        return self.recv_until("opened", "rejected", "error")

    def submit(self, session: str, collect: Optional[list] = None, **extra) -> dict:
        """Submit the session's workload; returns the ``result`` frame."""
        frame = {"type": "submit", "session": session, **extra}
        if self.trace is not None:
            self.trace.stamp(frame)
        self.send(frame)
        return self.recv_until("result", "error", collect=collect)

    def close_session(self, session: str, collect: Optional[list] = None) -> dict:
        self.send({"type": "close", "session": session})
        return self.recv_until("closed", "error", collect=collect)

    def stats(self) -> dict:
        self.send({"type": "stats"})
        return self.recv_until("stats")

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
