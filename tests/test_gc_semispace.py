"""SemiSpace copying collector: evacuation, forwarding, handle stability."""

import pytest

from repro.errors import OutOfMemoryError
from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine
from tests.conftest import build_chain, make_node_class


@pytest.fixture
def ss_vm():
    return VirtualMachine(heap_bytes=1 << 20, collector="semispace")


@pytest.fixture
def ss_node(ss_vm):
    return make_node_class(ss_vm)


class TestEvacuation:
    def test_live_objects_move_on_collection(self, ss_vm, ss_node):
        nodes = build_chain(ss_vm, ss_node, 5)
        before = [n.obj.address for n in nodes]
        ss_vm.gc()
        after = [n.obj.address for n in nodes]
        assert all(b != a for b, a in zip(before, after))
        assert all(n.is_live for n in nodes)

    def test_dead_objects_do_not_move(self, ss_vm, ss_node):
        with ss_vm.scope():
            a = ss_vm.new(ss_node)
        ss_vm.gc()
        assert not a.is_live

    def test_field_references_rewritten(self, ss_vm, ss_node):
        nodes = build_chain(ss_vm, ss_node, 5)
        ss_vm.gc()
        # Walking the chain through the heap still reaches every node.
        current = nodes[0]
        seen = [current["value"]]
        while current["next"] is not None:
            current = current["next"]
            seen.append(current["value"])
        assert seen == [0, 1, 2, 3, 4]

    def test_static_roots_rewritten(self, ss_vm, ss_node):
        build_chain(ss_vm, ss_node, 2, root_name="chain")
        ss_vm.gc()
        addr = ss_vm.statics.get_ref("chain")
        assert ss_vm.heap.contains(addr)

    def test_frame_roots_rewritten(self, ss_vm, ss_node):
        frame = ss_vm.current_thread.push_frame("f")
        with ss_vm.scope():
            node = ss_vm.new(ss_node, value=7)
            frame.set_ref("n", node.address)
        ss_vm.gc()
        assert ss_vm.heap.contains(frame.get_ref("n"))
        assert ss_vm.handle(frame.get_ref("n"))["value"] == 7

    def test_handles_stay_valid_across_moves(self, ss_vm, ss_node):
        nodes = build_chain(ss_vm, ss_node, 3)
        ss_vm.gc()
        ss_vm.gc()
        assert nodes[1]["value"] == 1

    def test_spaces_flip(self, ss_vm, ss_node):
        build_chain(ss_vm, ss_node, 2)
        first = ss_vm.collector.from_space.name
        ss_vm.gc()
        assert ss_vm.collector.from_space.name != first
        ss_vm.gc()
        assert ss_vm.collector.from_space.name == first

    def test_no_dangling_after_copy(self, ss_vm, ss_node):
        nodes = build_chain(ss_vm, ss_node, 12)
        nodes[5]["next"] = None
        ss_vm.gc()
        heap = ss_vm.heap
        for obj in heap:
            for ref in obj.reference_slots():
                if ref != 0:
                    assert heap.contains(ref)


class TestSemiSpaceCapacity:
    def test_usable_capacity_is_half(self):
        vm = VirtualMachine(heap_bytes=64 << 10, collector="semispace")
        cls = make_node_class(vm)
        with pytest.raises(OutOfMemoryError):
            build_chain(vm, cls, 10_000)

    def test_allocation_triggered_collection(self):
        vm = VirtualMachine(heap_bytes=32 << 10, collector="semispace")
        cls = make_node_class(vm)
        for _ in range(3000):
            with vm.scope():
                vm.new(cls)
        assert vm.stats.collections > 0
        vm.gc()  # the last batch of floating garbage dies here
        assert vm.heap.stats.objects_live == 0


class TestAssertionsOnSemiSpace:
    """§2.2: the technique works with any tracing collector."""

    def test_assert_dead_violation_detected(self, ss_vm, ss_node):
        nodes = build_chain(ss_vm, ss_node, 3)
        ss_vm.assertions.assert_dead(nodes[2], site="ss-test")
        ss_vm.gc()
        assert len(ss_vm.engine.log) == 1

    def test_assert_dead_satisfied_after_move(self, ss_vm, ss_node):
        nodes = build_chain(ss_vm, ss_node, 3)
        ss_vm.assertions.assert_dead(nodes[2], site="ss-test")
        nodes[1]["next"] = None
        ss_vm.gc()
        assert len(ss_vm.engine.log) == 0
        assert ss_vm.engine.registry.dead_satisfied == 1

    def test_ownership_metadata_forwarded(self, ss_vm, ss_node):
        with ss_vm.scope():
            owner = ss_vm.new(ss_node)
            ownee = ss_vm.new(ss_node)
            owner["next"] = ownee
            ss_vm.statics.set_ref("o", owner.address)
            ss_vm.assertions.assert_ownedby(owner, ownee)
        ss_vm.gc()  # everything moves; registry must follow
        assert ss_vm.engine.registry.owner_of(ownee.obj.address) == owner.obj.address
        ss_vm.gc()
        assert len(ss_vm.engine.log) == 0

    def test_unshared_violation_detected_after_moves(self, ss_vm, ss_node):
        with ss_vm.scope():
            a = ss_vm.new(ss_node)
            b = ss_vm.new(ss_node)
            target = ss_vm.new(ss_node)
            a["next"] = target
            b["next"] = target
            ss_vm.statics.set_ref("a", a.address)
            ss_vm.statics.set_ref("b", b.address)
            ss_vm.assertions.assert_unshared(target)
        ss_vm.gc()
        assert any(v.kind.value == "assert-unshared" for v in ss_vm.engine.log)
