"""Heap-analysis toolkit tests (paths, retained size, incoming refs)."""

import pytest

from repro.gc.analysis import (
    heap_census,
    incoming_references,
    path_to,
    reachable_from,
    retained_size,
)
from repro.heap.object_model import FieldKind
from tests.conftest import build_chain, make_node_class


class TestPathTo:
    def test_path_through_chain(self, vm, node_class):
        nodes = build_chain(vm, node_class, 4)
        root_desc, chain = path_to(vm, nodes[3])
        assert "head" in root_desc
        assert [o.address for o in chain] == [n.obj.address for n in nodes]

    def test_path_is_shortest(self, vm, node_class):
        nodes = build_chain(vm, node_class, 5)
        vm.statics.set_ref("shortcut", nodes[3].address)
        root_desc, chain = path_to(vm, nodes[4])
        assert "shortcut" in root_desc
        assert len(chain) == 2

    def test_unreachable_returns_none(self, vm, node_class):
        with vm.scope():
            orphan = vm.new(node_class)
        assert path_to(vm, orphan.obj) is None

    def test_direct_root(self, vm, node_class):
        nodes = build_chain(vm, node_class, 1)
        root_desc, chain = path_to(vm, nodes[0])
        assert len(chain) == 1


class TestReachability:
    def test_closure_includes_self_and_descendants(self, vm, node_class):
        nodes = build_chain(vm, node_class, 4)
        closure = reachable_from(vm, nodes[1])
        assert closure == {n.obj.address for n in nodes[1:]}

    def test_cycle_terminates(self, vm, node_class):
        nodes = build_chain(vm, node_class, 3)
        nodes[2]["next"] = nodes[0]
        closure = reachable_from(vm, nodes[0])
        assert len(closure) == 3


class TestRetainedSize:
    def test_chain_tail_retained_by_middle(self, vm, node_class):
        nodes = build_chain(vm, node_class, 5)
        size = retained_size(vm, nodes[2])
        expected = sum(n.obj.size_bytes for n in nodes[2:])
        assert size == expected

    def test_shared_objects_not_retained(self, vm, node_class):
        with vm.scope():
            a = vm.new(node_class)
            b = vm.new(node_class)
            shared = vm.new(node_class)
            a["next"] = shared
            b["next"] = shared
            vm.statics.set_ref("a", a.address)
            vm.statics.set_ref("b", b.address)
        # a retains only itself: shared survives via b.
        assert retained_size(vm, a) == a.obj.size_bytes

    def test_memory_drag_quantified(self, vm):
        """The §3.2.1 oldCompany point: the dragged root retains the whole
        structure it dominates."""
        from repro.workloads.jbb.entities import build_company

        with vm.scope():
            company = build_company(vm, 1, 2, 5)
            vm.statics.set_ref("oldCompany", company.address)
        drag = retained_size(vm, company)
        # The company graph is hundreds of objects; dropping the root frees
        # essentially all of it.
        assert drag > 50 * 8
        vm.statics.drop_ref("oldCompany")
        vm.gc()
        assert vm.heap.stats.objects_live == 0

    def test_unreachable_object_retains_own_closure(self, vm, node_class):
        with vm.scope():
            a = vm.new(node_class)
            b = vm.new(node_class)
            a["next"] = b
        assert retained_size(vm, a) == a.obj.size_bytes + b.obj.size_bytes


class TestIncomingReferences:
    def test_field_and_root_holders_found(self, vm, node_class):
        nodes = build_chain(vm, node_class, 2)
        vm.statics.set_ref("also", nodes[1].address)
        holders = incoming_references(vm, nodes[1])
        descriptions = [d for d, _h in holders]
        assert any("also" in d for d in descriptions)
        assert any(d == "Node.next" for d in descriptions)

    def test_array_slot_named_by_index(self, vm, node_class):
        with vm.scope():
            arr = vm.new_array(node_class, 3)
            target = vm.new(node_class)
            arr[2] = target
            vm.statics.set_ref("arr", arr.address)
        holders = incoming_references(vm, target)
        assert any("[2]" in d for d, _h in holders)

    def test_no_holders_for_orphan(self, vm, node_class):
        with vm.scope():
            orphan = vm.new(node_class)
        assert incoming_references(vm, orphan.obj) == []


class TestCensus:
    def test_census_counts_by_class(self, vm, node_class):
        other = vm.define_class("Other", [("pad", FieldKind.INT)])
        build_chain(vm, node_class, 3)
        with vm.scope():
            vm.statics.set_ref("o", vm.new(other).address)
        census = heap_census(vm)
        assert census["Node"]["objects"] == 3
        assert census["Other"]["objects"] == 1
        assert census["Node"]["bytes"] == 3 * node_class.instance_size

    def test_census_sorted_by_bytes(self, vm, node_class):
        build_chain(vm, node_class, 10)
        census = heap_census(vm)
        sizes = [entry["bytes"] for entry in census.values()]
        assert sizes == sorted(sizes, reverse=True)
