"""Comparison cmp-heuristics: GC assertions vs heuristic leak detectors.

The paper's §1 claims, measured:

* "More accurate than heuristics ... the system generates no false
  positives" — we run a *healthy* workload under all three detectors: GC
  assertions stay silent; staleness flags live-but-idle data; type-growth
  needs warm-up suppression to stay quiet.
* Heuristics "can only suggest potential leaks": on the *leaky* workload,
  Cork-style growth names a type, staleness names instances without causes,
  while the GC assertion hands over the exact instance and the full heap
  path to the reference that must be cleared.
* Detection latency: assert-dead fires at the first GC after the leak;
  staleness needs the idle window to elapse; growth needs several samples.
"""

from __future__ import annotations

from repro.baselines import StalenessDetector, TypeGrowthProfiler
from repro.core.reporting import AssertionKind
from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine
from repro.workloads.containers import Vector

LEAK_CLASS = "app.Record"
IDLE_CLASS = "app.Config"


def _setup(vm):
    vm.define_class(LEAK_CLASS, [("id", FieldKind.INT)])
    vm.define_class(IDLE_CLASS, [("setting", FieldKind.INT)])
    registry = Vector.new(vm)
    vm.statics.set_ref("registry", registry.handle.address)
    leak_sink = Vector.new(vm)
    vm.statics.set_ref("leakSink", leak_sink.handle.address)
    with vm.scope():
        config = vm.new(IDLE_CLASS, setting=1)
        vm.statics.set_ref("config", config.address)
    return registry, leak_sink


def _run_rounds(vm, registry, leak_sink, rounds, leak, assertions):
    """Each round: add records, remove them again; if leaking, removed
    records are also appended to the never-cleared sink."""
    detections_at = None
    for round_index in range(rounds):
        with vm.scope():
            for i in range(6):
                record = vm.new(LEAK_CLASS, id=round_index * 6 + i)
                registry.append(record)
        for _ in range(6):
            record = registry.pop()
            if leak:
                leak_sink.append(record)
            if assertions and vm.assertions is not None:
                vm.assertions.assert_dead(record, site="registry.remove")
        vm.gc(reason=f"round {round_index}")
        if (
            detections_at is None
            and vm.engine is not None
            and len(vm.engine.log.of_kind(AssertionKind.DEAD)) > 0
        ):
            detections_at = round_index
    return detections_at


def test_healthy_run_false_positive_contrast(once, figure_report):
    def run():
        vm = VirtualMachine(heap_bytes=4 << 20)
        registry, leak_sink = _setup(vm)
        growth = TypeGrowthProfiler(vm)
        staleness = StalenessDetector(vm, stale_after=3)
        _run_rounds(vm, registry, leak_sink, rounds=6, leak=False, assertions=True)
        return {
            "assertion_violations": len(vm.engine.log),
            "growth_reports": [r.type_name for r in growth.report()],
            "stale_types": staleness.candidate_types(),
        }

    result = once(run)
    figure_report.append(
        "Comparison cmp-heuristics (healthy run):\n"
        f"  GC assertions:   {result['assertion_violations']} violations "
        "(no false positives, by construction)\n"
        f"  type growth:     {result['growth_reports'] or 'quiet'}\n"
        f"  staleness:       {result['stale_types'] or 'quiet'}"
    )
    # The paper's claim: zero false positives from assertions.
    assert result["assertion_violations"] == 0
    # The heuristic weakness: the live-but-idle Config object gets flagged.
    assert IDLE_CLASS in result["stale_types"]
    # Type growth stays quiet on a size-stable registry.
    assert LEAK_CLASS not in result["growth_reports"]


def test_leaky_run_diagnostic_quality(once, figure_report):
    def run():
        vm = VirtualMachine(heap_bytes=4 << 20)
        registry, leak_sink = _setup(vm)
        growth = TypeGrowthProfiler(vm)
        staleness = StalenessDetector(vm, stale_after=3)
        detected_at = _run_rounds(
            vm, registry, leak_sink, rounds=6, leak=True, assertions=True
        )
        violation = vm.engine.log.of_kind(AssertionKind.DEAD)[0]
        return {
            "detected_at_round": detected_at,
            "violation_path": violation.path.type_names(),
            "violation_root": violation.path.root_description,
            "growth_reports": [r.type_name for r in growth.report()],
            "stale_candidates": len(staleness.candidates()),
        }

    result = once(run)
    figure_report.append(
        "Comparison cmp-heuristics (leaky run):\n"
        f"  GC assertions: violation at round {result['detected_at_round']}, "
        f"path {result['violation_root']} -> "
        + " -> ".join(result["violation_path"])
        + "\n"
        f"  type growth:   flags {result['growth_reports']} (types only)\n"
        f"  staleness:     {result['stale_candidates']} candidates "
        "(instances, no causes)"
    )
    # assert-dead fires at the very first GC after the leak.
    assert result["detected_at_round"] == 0
    # ...with the precise path through the leak sink.
    assert "leakSink" in result["violation_root"]
    assert result["violation_path"][-1] == LEAK_CLASS
    # Cork-style growth eventually flags the Record type — type only.
    assert LEAK_CLASS in result["growth_reports"]
    # Staleness eventually lists candidate instances — no paths, no causes.
    assert result["stale_candidates"] > 0


def test_detection_latency_ordering(once):
    """assert-dead detects earlier than either heuristic can."""

    def run():
        # Growth heuristic needs >= min_samples censuses; staleness needs
        # stale_after idle epochs.  Assertions need exactly one GC.
        vm = VirtualMachine(heap_bytes=4 << 20)
        registry, leak_sink = _setup(vm)
        growth = TypeGrowthProfiler(vm)
        staleness = StalenessDetector(vm, stale_after=3)

        growth_detected = None
        staleness_detected = None
        assertion_detected = None
        for round_index in range(8):
            with vm.scope():
                for i in range(6):
                    record = vm.new(LEAK_CLASS, id=i)
                    registry.append(record)
            for _ in range(6):
                record = registry.pop()
                leak_sink.append(record)
                vm.assertions.assert_dead(record, site="remove")
            vm.gc()
            if assertion_detected is None and len(vm.engine.log):
                assertion_detected = round_index
            if growth_detected is None and any(
                r.type_name == LEAK_CLASS for r in growth.report()
            ):
                growth_detected = round_index
            if staleness_detected is None and any(
                c.type_name == LEAK_CLASS for c in staleness.candidates()
            ):
                staleness_detected = round_index
        return assertion_detected, growth_detected, staleness_detected

    assertion_at, growth_at, staleness_at = once(run)
    assert assertion_at == 0
    assert growth_at is not None and growth_at > assertion_at
    assert staleness_at is not None and staleness_at > assertion_at
