"""MiniJ parser tests."""

import pytest

from repro.errors import MiniJSyntaxError
from repro.interp import ast_nodes as ast
from repro.interp.parser import parse


class TestDeclarations:
    def test_empty_program(self):
        program = parse("")
        assert program.classes == []
        assert program.functions == []

    def test_class_with_fields_and_methods(self):
        program = parse(
            """
            class Node {
              var value: int;
              var next: Node;
              def get(): int { return this.value; }
            }
            """
        )
        cls = program.classes[0]
        assert cls.name == "Node"
        assert [f.name for f in cls.fields] == ["value", "next"]
        assert cls.fields[1].type == ast.TypeRef("Node")
        assert cls.methods[0].owner == "Node"

    def test_class_extends(self):
        program = parse("class A {} class B extends A {}")
        assert program.classes[1].superclass == "A"

    def test_function_signature(self):
        program = parse("def f(a: int, b: Node[]): bool { return true; }")
        fn = program.functions[0]
        assert [p.name for p in fn.params] == ["a", "b"]
        assert fn.params[1].type == ast.TypeRef("Node", 1)
        assert fn.return_type == ast.TypeRef("bool")

    def test_top_level_garbage_rejected(self):
        with pytest.raises(MiniJSyntaxError):
            parse("var x: int;")

    def test_array_type_depths(self):
        program = parse("def f(): int[][] { return null; }")
        assert program.functions[0].return_type.array_depth == 2


class TestStatements:
    def _body(self, text):
        return parse(f"def f(): void {{ {text} }}").functions[0].body

    def test_var_decl_with_init(self):
        stmt = self._body("var x: int = 1;")[0]
        assert isinstance(stmt, ast.VarDecl)
        assert isinstance(stmt.init, ast.IntLit)

    def test_assignment_targets(self):
        body = self._body("x = 1; x.f = 2; x[0] = 3;")
        assert isinstance(body[0].target, ast.Name)
        assert isinstance(body[1].target, ast.FieldAccess)
        assert isinstance(body[2].target, ast.Index)

    def test_bad_assignment_target(self):
        with pytest.raises(MiniJSyntaxError):
            self._body("1 = 2;")

    def test_if_else_chain(self):
        stmt = self._body("if (a) { } else if (b) { } else { }")[0]
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.else_body[0], ast.If)
        assert stmt.else_body[0].else_body is not None

    def test_while(self):
        stmt = self._body("while (x < 3) { x = x + 1; }")[0]
        assert isinstance(stmt, ast.While)

    def test_return_forms(self):
        body = self._body("return; return 1;")
        assert body[0].value is None
        assert isinstance(body[1].value, ast.IntLit)

    def test_missing_semicolon(self):
        with pytest.raises(MiniJSyntaxError):
            self._body("var x: int = 1")


class TestExpressions:
    def _expr(self, text):
        stmt = parse(f"def f(): void {{ g({text}); }}").functions[0].body[0]
        return stmt.expr.args[0]

    def test_precedence_mul_over_add(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_comparison_over_and(self):
        expr = self._expr("a < b && c > d")
        assert expr.op == "&&"
        assert expr.left.op == "<"

    def test_parentheses_override(self):
        expr = self._expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_chains(self):
        expr = self._expr("!!x")
        assert expr.op == "!"
        assert expr.operand.op == "!"

    def test_postfix_chain(self):
        expr = self._expr("a.b[0].c(1)")
        assert isinstance(expr, ast.MethodCall)
        assert expr.method == "c"
        inner = expr.target
        assert isinstance(inner, ast.Index)
        assert isinstance(inner.target, ast.FieldAccess)
        assert isinstance(inner.target.target, ast.Name)

    def test_new_object_and_array(self):
        obj = self._expr("new Node()")
        assert isinstance(obj, ast.NewObject)
        arr = self._expr("new Node[5]")
        assert isinstance(arr, ast.NewArray)
        assert arr.elem_type == ast.TypeRef("Node")

    def test_new_nested_array(self):
        arr = self._expr("new int[3][]")
        assert arr.elem_type == ast.TypeRef("int", 1)

    def test_this_literal_null(self):
        assert isinstance(self._expr("this"), ast.ThisExpr)
        assert isinstance(self._expr("null"), ast.NullLit)
        assert isinstance(self._expr('"s"'), ast.StrLit)

    def test_call_vs_name(self):
        call = self._expr("f(1, 2)")
        assert isinstance(call, ast.Call)
        assert len(call.args) == 2
        name = self._expr("f")
        assert isinstance(name, ast.Name)
