"""Per-class live-instance census: one heap walk, many consumers.

This is the Cork idea (Jump & McKinley — summarize the live heap per type
at each collection) promoted to a first-class telemetry primitive.
:func:`take_census` is the single heap-walk that produces a per-class
``(count, bytes)`` summary; :class:`ClassCensus` accumulates those
summaries into aligned time series.  The telemetry hub samples one at every
collection, and the Cork baseline (:mod:`repro.baselines.cork`) consumes
the same machinery instead of keeping its own books.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

if TYPE_CHECKING:
    from repro.heap.heap import ObjectHeap
    from repro.heap.object_model import HeapObject

#: One class's live summary at a single sample: (instance count, live bytes).
CensusRow = tuple[int, int]


def take_census(
    heap: "ObjectHeap",
    skip: Optional[Callable[["HeapObject"], bool]] = None,
) -> dict[str, CensusRow]:
    """Walk the live heap once and summarize it per class.

    ``skip`` filters out objects that are in the table but not logically
    live — lazy sweep modes pass their pending-garbage predicate so the
    census stays exact while sweep debt is outstanding.
    """
    census: dict[str, CensusRow] = {}
    for obj in heap:
        if skip is not None and skip(obj):
            continue
        name = obj.cls.name
        count, nbytes = census.get(name, (0, 0))
        census[name] = (count + 1, nbytes + obj.size_bytes)
    return census


def merge_censuses(
    partials: Iterable[dict[str, "CensusRow | list[int]"]],
) -> dict[str, CensusRow]:
    """Merge zone-local census partials into one whole-heap summary.

    Parallel marking must not bump a shared census dict from its drain
    loops — under concurrent per-zone updates a read-modify-write against
    a shared row is a lost-update race.  The discipline is: each zone
    (worker) accumulates into its *own* dict, and the coordinator merges
    the partials here, at pause end, on one thread.  Rows may arrive as
    tuples or as the 2-element lists workers mutate in place; the merged
    result is normalized to tuples, same shape as :func:`take_census`.
    """
    merged: dict[str, CensusRow] = {}
    for partial in partials:
        for name, row in partial.items():
            count, nbytes = merged.get(name, (0, 0))
            merged[name] = (count + row[0], nbytes + row[1])
    return merged


class ClassCensus:
    """Aligned per-class time series of live instance counts and bytes.

    Every class ever observed has a series exactly ``samples`` long —
    zero-filled before it first appeared and after it died out — so
    consumers can difference adjacent samples without alignment bookkeeping.
    """

    __slots__ = ("samples", "gc_numbers", "_series")

    def __init__(self) -> None:
        self.samples = 0
        #: Collection ordinal at which each sample was taken.
        self.gc_numbers: list[int] = []
        self._series: dict[str, list[CensusRow]] = {}

    # -- accumulation -----------------------------------------------------------------

    def observe(self, census: dict[str, CensusRow], gc_number: int = -1) -> None:
        """Append one sample (typically from :func:`take_census`)."""
        for name in set(self._series) | set(census):
            series = self._series.setdefault(name, [(0, 0)] * self.samples)
            series.append(census.get(name, (0, 0)))
        self.samples += 1
        self.gc_numbers.append(gc_number)

    # -- queries ----------------------------------------------------------------------

    def class_names(self) -> Iterable[str]:
        return self._series.keys()

    def count_series(self, name: str) -> list[int]:
        return [count for count, _nbytes in self._series.get(name, [])]

    def bytes_series(self, name: str) -> list[int]:
        return [nbytes for _count, nbytes in self._series.get(name, [])]

    def slope(self, name: str) -> float:
        """Least-squares growth slope of ``name``'s live bytes, in bytes
        per census sample.

        This is the number Cork's type-growth ranking is built on: a
        steadily leaking class has a positive slope however bursty the
        individual samples are, while a healthy class oscillates around
        zero.  Classes with fewer than two samples have no trend (0.0).
        """
        series = self.bytes_series(name)
        n = len(series)
        if n < 2:
            return 0.0
        # x = 0..n-1, so the sums have closed forms.
        sum_x = n * (n - 1) / 2.0
        sum_xx = (n - 1) * n * (2 * n - 1) / 6.0
        sum_y = float(sum(series))
        sum_xy = float(sum(i * y for i, y in enumerate(series)))
        denom = n * sum_xx - sum_x * sum_x
        if denom == 0.0:
            return 0.0
        return (n * sum_xy - sum_x * sum_y) / denom

    def slopes(self) -> dict[str, float]:
        """Per-class byte-growth slopes over every observed class."""
        return {name: self.slope(name) for name in self._series}

    def latest(self) -> dict[str, CensusRow]:
        """The most recent sample, omitting classes with no live instances."""
        if not self.samples:
            return {}
        return {
            name: series[-1]
            for name, series in self._series.items()
            if series[-1] != (0, 0)
        }

    def as_dict(self) -> dict:
        return {
            "samples": self.samples,
            "gc_numbers": list(self.gc_numbers),
            "classes": {
                name: {
                    "counts": self.count_series(name),
                    "bytes": self.bytes_series(name),
                }
                for name in sorted(self._series)
            },
        }

    def __repr__(self) -> str:
        return f"<ClassCensus {len(self._series)} classes x {self.samples} samples>"
