"""Immediate dominators over a heap snapshot's reachability graph.

An object *d* dominates *o* when every path from a root to *o* passes
through *d*; the immediate dominator is the closest such *d*.  The
dominator tree is what turns a snapshot into an ownership view: cutting
*o*'s incoming edges frees exactly the dominator subtree under *o* (its
*retained size*, see :mod:`repro.snapshot.retained`), and the chain of
dominators from the super-root to *o* answers "why is this alive" with
the set of single points of failure — unlike a witness path, every entry
in the chain *must* be on every path.

The algorithm is the iterative Cooper–Harvey–Kennedy formulation ("A
Simple, Fast Dominance Algorithm"): number the nodes in reverse postorder
from a synthetic super-root (which has one edge to each distinct GC root),
then repeatedly intersect the predecessors' dominator chains until a fixed
point.  On reducible-ish heap graphs this converges in two or three
passes and needs no auxiliary forests, which is why it beats
Lengauer–Tarjan in practice at this scale; heap cycles (irreducible
regions) just cost extra passes, not correctness.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.snapshot.format import HeapSnapshot

#: The synthetic super-root's "address".  NULL (0) is never a real object
#: address, so it is free for the node that parents every GC root.
SUPER_ROOT = 0


class DominatorTree:
    """Immediate-dominator mapping for every object reachable from roots.

    ``idom[addr]`` is the immediate dominator's address (``SUPER_ROOT``
    for objects with no interior single point of failure); ``order`` is
    the reverse postorder used to build the tree, which is also a valid
    top-down processing order for it (an idom always precedes its
    dominated nodes).
    """

    __slots__ = ("idom", "order")

    def __init__(self, idom: dict[int, int], order: list[int]):
        self.idom = idom
        self.order = order

    def __contains__(self, addr: int) -> bool:
        return addr in self.idom

    def __len__(self) -> int:
        """Number of reachable objects (the super-root is not counted)."""
        return len(self.idom) - 1

    def chain(self, addr: int) -> list[int]:
        """Dominator chain, outermost first, ending at ``addr``.

        The super-root is omitted: the first entry is the outermost real
        object that every root-to-``addr`` path passes through.
        """
        if addr not in self.idom:
            raise KeyError(f"address {addr:#x} is not reachable in this snapshot")
        chain: list[int] = []
        cursor = addr
        while cursor != SUPER_ROOT:
            chain.append(cursor)
            cursor = self.idom[cursor]
        chain.reverse()
        return chain

    def children(self) -> dict[int, list[int]]:
        """Dominator-tree adjacency (idom address -> dominated addresses)."""
        out: dict[int, list[int]] = {}
        for addr, dom in self.idom.items():
            if addr == SUPER_ROOT:
                continue
            out.setdefault(dom, []).append(addr)
        return out


def build_dominator_tree(snapshot: "HeapSnapshot") -> DominatorTree:
    """Compute immediate dominators for every object reachable from roots.

    Objects recorded in the snapshot but unreachable from its root set
    (possible only with hand-built snapshots; capture never emits them)
    are left out of the tree.
    """
    objects = snapshot.objects
    root_addrs = snapshot.root_addresses()

    # Reverse postorder via an iterative DFS from the super-root.  The
    # explicit edge-iterator stack mirrors the recursive formulation so
    # postorder numbers come out exactly as the textbook algorithm's.
    postorder: list[int] = []
    visited: set[int] = {SUPER_ROOT}
    preds: dict[int, list[int]] = {}
    succ_of_super = [a for a in root_addrs if a in objects]
    stack: list[tuple[int, iter]] = [(SUPER_ROOT, iter(succ_of_super))]
    while stack:
        node, edges = stack[-1]
        advanced = False
        for child in edges:
            if child not in objects:
                continue  # a dangling edge in a hand-built snapshot
            preds.setdefault(child, []).append(node)
            if child not in visited:
                visited.add(child)
                stack.append((child, iter(objects[child].edges)))
                advanced = True
                break
        if not advanced:
            postorder.append(node)
            stack.pop()
    order = postorder[::-1]  # reverse postorder; order[0] == SUPER_ROOT

    rpo_number = {addr: i for i, addr in enumerate(order)}
    idom: dict[int, int] = {SUPER_ROOT: SUPER_ROOT}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while rpo_number[a] > rpo_number[b]:
                a = idom[a]
            while rpo_number[b] > rpo_number[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for addr in order[1:]:
            new_idom: Optional[int] = None
            for pred in preds.get(addr, ()):
                if pred in idom:
                    new_idom = pred if new_idom is None else intersect(pred, new_idom)
            if new_idom is not None and idom.get(addr) != new_idom:
                idom[addr] = new_idom
                changed = True
    return DominatorTree(idom, order)
