"""Collapsed-stack flamegraph export of mark-work attribution.

The recorder's opt-in post-mark heap walk (``attribute_marks``) accumulates
``(type, alloc site) -> [objects, bytes]`` over every attributed collection.
This module renders that as Brendan Gregg's collapsed-stack format — one
``frame;frame;frame value`` line per stack — which ``flamegraph.pl``,
speedscope, and Perfetto's "import" all accept:

    collect;mark_drain;LinkedNode;sim:swap-region 18432

The synthetic two-frame prefix keeps every stack rooted under the span
taxonomy (``collect`` → ``mark_drain``), so the flamegraph reads as a
drill-down of the phase the work happened in.  ``value`` is bytes marked by
default (what a leak hunt wants) or objects marked with ``weight="objects"``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.tracing.spans import SpanTracer

#: Synthetic root frames placing mark work inside the span taxonomy.
STACK_PREFIX = ("collect", "mark_drain")


def collapsed_stacks(tracer: "SpanTracer", weight: str = "bytes") -> list[str]:
    """Render ``tracer.mark_attribution`` as collapsed-stack lines.

    ``weight`` selects the sample value: ``"bytes"`` (default) or
    ``"objects"``.  Lines are sorted by descending value, then stack, so
    the output is deterministic and the heaviest stacks lead.
    """
    if weight not in ("bytes", "objects"):
        raise ValueError(f"unknown weight {weight!r} (use 'bytes' or 'objects')")
    index = 1 if weight == "bytes" else 0
    prefix = ";".join(STACK_PREFIX)
    rows = []
    for (type_name, alloc_site), counts in tracer.mark_attribution.items():
        value = counts[index]
        if value:
            rows.append((value, f"{prefix};{type_name};{alloc_site}"))
    rows.sort(key=lambda row: (-row[0], row[1]))
    return [f"{stack} {value}" for value, stack in rows]


def write_flamegraph(tracer: "SpanTracer", path: str, weight: str = "bytes") -> dict:
    """Write the collapsed-stack file; returns a small summary."""
    lines = collapsed_stacks(tracer, weight)
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")
    return {"path": path, "stacks": len(lines), "weight": weight}
