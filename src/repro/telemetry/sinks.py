"""Pluggable telemetry exporters.

A sink receives every :class:`~repro.telemetry.events.GcEvent` as it is
produced (push model); the Prometheus renderer is the complementary pull
model — it serializes the hub's *current* state into the text exposition
format a scraper would fetch.  Sinks must never throw into the collector's
pause: exporter failures are recorded on the sink and the GC proceeds.
"""

from __future__ import annotations

import io
import json
import re
from typing import TYPE_CHECKING, Optional, Protocol

from repro.telemetry.events import GcEvent

if TYPE_CHECKING:
    from repro.telemetry import Telemetry


class TelemetrySink(Protocol):
    """What the hub requires of an exporter."""

    def emit(self, event: GcEvent) -> None: ...

    def close(self) -> None: ...


class MemorySink:
    """Default sink: keeps every event in a plain list (tests, notebooks)."""

    def __init__(self) -> None:
        self.events: list[GcEvent] = []
        self.closed = False

    def emit(self, event: GcEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        self.closed = True

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink:
    """Streams one JSON object per event to a file (JSON-lines).

    The file opens lazily on the first event, so constructing a VM with a
    configured-but-unused sink touches no filesystem state.
    """

    def __init__(self, path: str):
        self.path = path
        self.lines_written = 0
        self.errors = 0
        self._file: Optional[io.TextIOBase] = None

    def emit(self, event: GcEvent) -> None:
        try:
            if self._file is None:
                self._file = open(self.path, "w")
            self._file.write(json.dumps(event.as_dict()) + "\n")
            self._file.flush()
            self.lines_written += 1
        except OSError:
            self.errors += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    @staticmethod
    def load(path: str) -> list[dict]:
        """Read a JSONL event file back as dicts (the round-trip helper)."""
        with open(path) as handle:
            return [json.loads(line) for line in handle if line.strip()]


def _fmt(value: float) -> str:
    """Prometheus sample formatting: integers bare, floats repr'd."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


def _escape_label(value: str) -> str:
    """Escape a label *value* per the exposition format: backslash first,
    then double-quote and newline (the three characters the format names)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """Escape HELP text: the format requires ``\\`` and newline escaping
    (quotes are legal in HELP, so they stay literal)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


class ExpositionWriter:
    """Incremental Prometheus text-exposition builder.

    The ``metric``/``sample`` closure pair used to be copy-pasted by every
    exposition producer (telemetry, monitor, service); this is that pair as
    a class, so new metric families — including label-heavy ones like the
    service's per-``tenant`` families — are written once.  ``metric``
    declares a family (HELP + TYPE) and returns the namespaced name;
    ``sample`` appends one sample line; ``histogram`` expands a
    :class:`~repro.telemetry.histogram.LogHistogram` into the cumulative
    ``_bucket``/``_sum``/``_count`` triple.
    """

    def __init__(self, namespace: str = "repro"):
        self.namespace = namespace
        self.lines: list[str] = []

    def metric(self, name: str, mtype: str, help_text: str) -> str:
        full = f"{self.namespace}_{name}"
        self.lines.append(f"# HELP {full} {_escape_help(help_text)}")
        self.lines.append(f"# TYPE {full} {mtype}")
        return full

    def sample(self, full: str, value, labels: Optional[dict] = None) -> None:
        if labels:
            rendered = ",".join(
                f'{k}="{_escape_label(str(v))}"' for k, v in labels.items()
            )
            self.lines.append(f"{full}{{{rendered}}} {_fmt(value)}")
        else:
            self.lines.append(f"{full} {_fmt(value)}")

    def histogram(
        self, full: str, hist, labels: Optional[dict] = None
    ) -> None:
        """Expand a LogHistogram: cumulative buckets, +Inf, sum, count."""
        labels = dict(labels or {})
        cumulative = 0
        for upper, count in hist.nonzero_buckets():
            cumulative += count
            self.sample(f"{full}_bucket", cumulative, {**labels, "le": _fmt(upper)})
        self.sample(f"{full}_bucket", hist.count, {**labels, "le": "+Inf"})
        self.sample(f"{full}_sum", hist.total, labels or None)
        self.sample(f"{full}_count", hist.count, labels or None)

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def render_prometheus(telemetry: "Telemetry", namespace: str = "repro") -> str:
    """Serialize the hub's current state in Prometheus text exposition format."""
    writer = ExpositionWriter(namespace)
    metric, sample = writer.metric, writer.sample

    latest = telemetry.events.latest
    collector = latest.collector if latest is not None else "none"

    full = metric("gc_collections_total", "counter", "Collections observed, by kind.")
    for kind, count in sorted(telemetry.collections_by_kind.items()):
        sample(full, count, {"collector": collector, "kind": kind})

    full = metric("gc_events_dropped_total", "counter",
                  "GC events shed by the bounded ring buffer.")
    sample(full, telemetry.events.dropped)

    for name, hist, unit in (
        ("gc_pause_seconds", telemetry.pause_hist, "GC stop-the-world pause"),
        ("allocation_bytes", telemetry.alloc_hist, "Mutator allocation request size"),
        ("gc_ownees_checked", telemetry.ownees_hist, "Ownees checked per collection"),
    ):
        full = metric(name, "histogram", f"{unit} (log-scale buckets).")
        writer.histogram(full, hist)

    if latest is not None:
        full = metric("heap_live_bytes", "gauge", "Live heap bytes after the last GC.")
        sample(full, latest.bytes_after)
        full = metric("heap_occupancy_ratio", "gauge",
                      "Live bytes / heap budget after the last GC.")
        sample(full, latest.occupancy_after)
        full = metric("gc_sweep_debt_chunks", "gauge",
                      "Unswept chunks outstanding after the last GC "
                      "(lazy sweep; 0 when reclamation is exact).")
        sample(full, latest.sweep_debt_chunks)
        full = metric("gc_quarantine_depth", "gauge",
                      "Addresses fenced in the corruption quarantine after "
                      "the last GC (bounded; overflow is a typed failure).")
        sample(full, latest.quarantine_depth)

    census = telemetry.census.latest()
    if census:
        count_metric = metric("heap_live_objects", "gauge",
                              "Live instances per class at the last census.")
        for name, (count, _nbytes) in sorted(census.items()):
            sample(count_metric, count, {"class": name})
        bytes_metric = metric("heap_class_bytes", "gauge",
                              "Live bytes per class at the last census.")
        for name, (_count, nbytes) in sorted(census.items()):
            sample(bytes_metric, nbytes, {"class": name})

    if telemetry.violations_by_kind:
        full = metric("gc_assertion_violations_total", "counter",
                      "Assertion violations detected, by assertion kind.")
        for kind, count in sorted(telemetry.violations_by_kind.items()):
            sample(full, count, {"kind": kind})

    return writer.render()


# -- exposition-format conformance ------------------------------------------------------

_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
_TYPES = frozenset({"counter", "gauge", "histogram", "summary", "untyped"})


def _scan_label_value(line: str, pos: int) -> Optional[int]:
    """Scan a quoted label value starting at ``line[pos] == '"'``; returns
    the index just past the closing quote, or None on a malformed escape
    or an unterminated value.  Only ``\\\\``, ``\\"`` and ``\\n`` escapes
    are legal in the exposition format."""
    i = pos + 1
    while i < len(line):
        ch = line[i]
        if ch == "\\":
            if i + 1 >= len(line) or line[i + 1] not in ('\\', '"', 'n'):
                return None
            i += 2
        elif ch == '"':
            return i + 1
        else:
            i += 1
    return None


def _validate_sample_line(line: str) -> Optional[str]:
    """One sample line; returns a problem description or None."""
    match = _METRIC_NAME_RE.match(line)
    if match is None:
        return "does not start with a metric name"
    i = match.end()
    if i < len(line) and line[i] == "{":
        i += 1
        while True:
            if i >= len(line):
                return "unterminated label set"
            if line[i] == "}":
                i += 1
                break
            name = _LABEL_NAME_RE.match(line, i)
            if name is None:
                return f"bad label name at column {i}"
            i = name.end()
            if i >= len(line) or line[i] != "=":
                return f"label {name.group()!r} missing '='"
            if i + 1 >= len(line) or line[i + 1] != '"':
                return f"label {name.group()!r} value is not quoted"
            end = _scan_label_value(line, i + 1)
            if end is None:
                return f"label {name.group()!r} value is unterminated or has a bad escape"
            i = end
            if i < len(line) and line[i] == ",":
                i += 1
    rest = line[i:]
    if not rest.startswith(" "):
        return "no space between name/labels and value"
    parts = rest.strip().split()
    if not parts or len(parts) > 2:
        return "expected '<value> [timestamp]' after the metric"
    value = parts[0]
    if value not in ("+Inf", "-Inf", "NaN"):
        try:
            float(value)
        except ValueError:
            return f"unparseable sample value {value!r}"
    if len(parts) == 2 and not parts[1].lstrip("-").isdigit():
        return f"unparseable timestamp {parts[1]!r}"
    return None


def validate_exposition(text: str) -> list[str]:
    """Conformance-check Prometheus text exposition format (version 0.0.4).

    Returns a list of problem strings (empty = conformant).  Checks line
    shapes, metric/label name charsets, label-value escaping, TYPE
    declarations, and that every sample's name matches a declared metric
    family (histograms may append ``_bucket``/``_sum``/``_count``).
    """
    problems: list[str] = []
    declared: dict[str, str] = {}
    if text and not text.endswith("\n"):
        problems.append("exposition must end with a newline")
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # plain comment, legal
            name = parts[2]
            if not _METRIC_NAME_RE.fullmatch(name):
                problems.append(f"line {lineno}: bad metric name {name!r}")
            elif parts[1] == "TYPE":
                mtype = parts[3].strip() if len(parts) > 3 else ""
                if mtype not in _TYPES:
                    problems.append(f"line {lineno}: unknown TYPE {mtype!r}")
                elif name in declared:
                    problems.append(f"line {lineno}: duplicate TYPE for {name}")
                else:
                    declared[name] = mtype
            continue
        problem = _validate_sample_line(line)
        if problem is not None:
            problems.append(f"line {lineno}: {problem} in {line!r}")
            continue
        name = _METRIC_NAME_RE.match(line).group()
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in declared:
                family = name[: -len(suffix)]
                break
        if declared and family not in declared:
            problems.append(f"line {lineno}: sample {name!r} has no TYPE declaration")
    return problems
