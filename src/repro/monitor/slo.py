"""Pause-SLO error budgets and multi-window burn-rate alerting.

An :class:`SloObjective` is a declarative statement of acceptable heap
behavior — "p99 of pauses under 50ms", "MMU(100ms) at least 0.5", "no
quarantined corruption, ever" — with an *error budget*: the fraction of
observations allowed to violate the threshold before the objective is
out of SLO.  Each GC event becomes one good/bad observation per
objective; :class:`BurnRateRule` watches how fast the budget burns over
a long and a short trailing window (the multi-window pattern: the long
window proves the problem is real, the short window proves it is *still
happening*) and emits a typed :class:`AlertEvent` on the transition into
and out of the firing state.

Alerts are plain frozen dataclasses with an ``event`` discriminator, so
they travel the existing telemetry sink fan-out (JSONL rows, memory
sinks, circuit breakers) like every other out-of-band event.

Observation counts — not wall-clock seconds — drive the windows.  The
workloads here run milliseconds per GC cycle; counting observations
makes trigger/clear behavior deterministic under test and in CI while
preserving the burn-rate semantics (a window of N observations *is* a
time window at any steady event rate).
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.monitor.timeseries import MonitorHub
    from repro.telemetry.events import GcEvent

SLO_SCHEMA = "repro-slo/1"


@dataclass(frozen=True)
class AlertEvent:
    """One burn-rate alert transition (``alert`` in the event stream)."""

    event: str               #: always "alert" (sink discriminator)
    objective: str           #: SloObjective.name
    state: str               #: "firing" | "resolved"
    severity: str            #: "page" | "ticket"
    burn_rate: float         #: long-window burn rate at transition
    short_burn_rate: float   #: short-window burn rate at transition
    budget_remaining: float  #: fraction of error budget left (can be < 0)
    seq: int                 #: GC ordinal that caused the transition
    wall_time: float         #: epoch seconds at transition
    detail: str              #: human-readable cause summary
    #: Exemplar: the distributed trace_id of a recent bad observation,
    #: so a firing alert names an exact request trace to open (None when
    #: the caller does not propagate trace context, e.g. GC-event SLOs).
    exemplar: Optional[str] = None

    def as_dict(self) -> dict:
        return asdict(self)

    def render(self) -> str:
        line = (
            f"alert[{self.objective}] {self.state} ({self.severity}) "
            f"burn={self.burn_rate:.2f}x/{self.short_burn_rate:.2f}x "
            f"budget={self.budget_remaining:.0%}: {self.detail}"
        )
        if self.exemplar is not None:
            line += f" exemplar={self.exemplar}"
        return line


@dataclass
class SloObjective:
    """One declarative objective over the GC event stream.

    ``probe(hub, event)`` returns True when the observation is *good*.
    ``budget`` is the allowed bad fraction: 0.01 encodes a p99 objective
    (at most 1 in 100 observations may violate the threshold), and 0.0
    encodes a zero-tolerance objective — any bad observation immediately
    exhausts the budget and fires.
    """

    name: str
    description: str
    budget: float
    probe: Callable[["MonitorHub", "GcEvent"], bool]
    severity: str = "page"

    def __post_init__(self) -> None:
        if not 0.0 <= self.budget < 1.0:
            raise ConfigurationError(
                f"SLO {self.name!r}: budget must be in [0, 1), got {self.budget}"
            )
        if self.severity not in ("page", "ticket"):
            raise ConfigurationError(
                f"SLO {self.name!r}: severity must be 'page' or 'ticket', "
                f"got {self.severity!r}"
            )


@dataclass
class BurnRateRule:
    """Multi-window burn-rate alerting state for one objective.

    Burn rate = (bad fraction in window) / budget; 1.0 means the budget
    burns exactly as fast as it accrues.  The rule **fires** when the
    rate is at least ``factor`` on both the long and the short window
    (the short window keeps a stale long window from paging after the
    problem stops), and **clears** after ``clear_good`` consecutive good
    observations — count-based hysteresis, so a single good cycle in the
    middle of an incident does not flap the alert.

    Zero-budget objectives treat any bad observation as an infinite burn
    rate: they fire immediately and clear by the same hysteresis.
    """

    objective: SloObjective
    long_window: int = 60
    short_window: int = 12
    factor: float = 6.0
    clear_good: int = 8

    _long: deque = field(init=False, repr=False)
    _short: deque = field(init=False, repr=False)
    firing: bool = field(default=False, init=False)
    consecutive_good: int = field(default=0, init=False)
    total: int = field(default=0, init=False)
    bad: int = field(default=0, init=False)
    transitions: int = field(default=0, init=False)
    #: trace_id of the most recent bad observation (attached to firing
    #: alerts as the exemplar; None until a caller propagates one).
    last_bad_exemplar: Optional[str] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.short_window > self.long_window:
            raise ConfigurationError(
                f"rule for {self.objective.name!r}: short window "
                f"({self.short_window}) exceeds long window ({self.long_window})"
            )
        if self.factor <= 0 or self.clear_good < 1:
            raise ConfigurationError(
                f"rule for {self.objective.name!r}: factor must be > 0 and "
                f"clear_good >= 1"
            )
        self._long = deque(maxlen=self.long_window)
        self._short = deque(maxlen=self.short_window)

    def _rate(self, window: deque) -> float:
        """Burn rate over one window; inf when a zero budget is violated."""
        if not window:
            return 0.0
        bad_frac = sum(window) / len(window)
        if self.objective.budget == 0.0:
            return float("inf") if bad_frac > 0.0 else 0.0
        return bad_frac / self.objective.budget

    def burn_rates(self) -> tuple[float, float]:
        return self._rate(self._long), self._rate(self._short)

    def budget_remaining(self) -> float:
        """Fraction of the error budget left over the long window."""
        if not self._long:
            return 1.0
        bad_frac = sum(self._long) / len(self._long)
        if self.objective.budget == 0.0:
            return 1.0 if bad_frac == 0.0 else 0.0
        return 1.0 - bad_frac / self.objective.budget

    def observe(
        self,
        good: bool,
        seq: int,
        wall_time: float,
        exemplar: Optional[str] = None,
    ) -> Optional[AlertEvent]:
        """Feed one observation; returns an alert on a state transition.

        ``exemplar`` is an optional distributed trace_id for this
        observation; the most recent *bad* one rides along on firing
        alerts so the operator can jump straight to the guilty request.
        """
        self.total += 1
        if good:
            self.consecutive_good += 1
        else:
            self.bad += 1
            self.consecutive_good = 0
            if exemplar is not None:
                self.last_bad_exemplar = exemplar
        self._long.append(0 if good else 1)
        self._short.append(0 if good else 1)
        long_rate, short_rate = self.burn_rates()

        if not self.firing:
            if self.objective.budget == 0.0:
                # Zero tolerance: a *fresh* bad observation fires.  (Window
                # rates would re-fire on stale bads still aging out after a
                # clear — the alert must track new damage, not old history.)
                should_fire = not good
            else:
                should_fire = long_rate >= self.factor and short_rate >= self.factor
            if should_fire:
                self.firing = True
                self.transitions += 1
                return self._alert("firing", long_rate, short_rate, seq, wall_time)
        elif self.consecutive_good >= self.clear_good:
            self.firing = False
            self.transitions += 1
            return self._alert("resolved", long_rate, short_rate, seq, wall_time)
        return None

    def _alert(
        self, state: str, long_rate: float, short_rate: float,
        seq: int, wall_time: float,
    ) -> AlertEvent:
        obj = self.objective
        if state == "firing":
            rate = "inf" if long_rate == float("inf") else f"{long_rate:.2f}"
            detail = f"{obj.description}: burning budget at {rate}x"
        else:
            detail = (
                f"{obj.description}: {self.consecutive_good} consecutive "
                f"good observations"
            )
        return AlertEvent(
            event="alert",
            objective=obj.name,
            state=state,
            severity=obj.severity,
            burn_rate=long_rate,
            short_burn_rate=short_rate,
            budget_remaining=self.budget_remaining(),
            seq=seq,
            wall_time=wall_time,
            detail=detail,
            exemplar=self.last_bad_exemplar if state == "firing" else None,
        )


class SloSet:
    """A named collection of objectives with their burn-rate rules.

    ``observe`` is called by the hub once per GC event; ``status`` is the
    machine-readable state the ``/slo`` endpoint and the CLI exit code
    read.  Exit-code semantics: 0 = all within budget, 1 = budget
    exhausted or an alert currently firing, 2 = configuration error
    (raised, not returned).
    """

    def __init__(self, rules: Optional[list[BurnRateRule]] = None):
        self.rules = list(rules) if rules is not None else []
        seen: set[str] = set()
        for rule in self.rules:
            if rule.objective.name in seen:
                raise ConfigurationError(
                    f"duplicate SLO objective {rule.objective.name!r}"
                )
            seen.add(rule.objective.name)

    def add(self, rule: BurnRateRule) -> "SloSet":
        if any(r.objective.name == rule.objective.name for r in self.rules):
            raise ConfigurationError(
                f"duplicate SLO objective {rule.objective.name!r}"
            )
        self.rules.append(rule)
        return self

    def observe(self, hub: "MonitorHub", event: "GcEvent") -> list[AlertEvent]:
        alerts = []
        for rule in self.rules:
            good = bool(rule.objective.probe(hub, event))
            alert = rule.observe(good, event.seq, event.wall_time)
            if alert is not None:
                alerts.append(alert)
        return alerts

    def firing(self) -> list[BurnRateRule]:
        return [rule for rule in self.rules if rule.firing]

    def exhausted(self) -> list[BurnRateRule]:
        return [rule for rule in self.rules if rule.budget_remaining() <= 0.0]

    def healthy(self) -> bool:
        return not self.firing() and not self.exhausted()

    def exit_code(self) -> int:
        return 0 if self.healthy() else 1

    def status(self) -> dict:
        """Machine-readable SLO state (the ``/slo`` endpoint body)."""
        rows = []
        for rule in self.rules:
            long_rate, short_rate = rule.burn_rates()
            rows.append({
                "objective": rule.objective.name,
                "description": rule.objective.description,
                "severity": rule.objective.severity,
                "budget": rule.objective.budget,
                "budget_remaining": rule.budget_remaining(),
                "burn_rate_long": _json_rate(long_rate),
                "burn_rate_short": _json_rate(short_rate),
                "firing": rule.firing,
                "observations": rule.total,
                "bad_observations": rule.bad,
                "transitions": rule.transitions,
                "exemplar": rule.last_bad_exemplar if rule.firing else None,
            })
        return {
            "schema": SLO_SCHEMA,
            "healthy": self.healthy(),
            "firing": [rule.objective.name for rule in self.firing()],
            "exhausted": [rule.objective.name for rule in self.exhausted()],
            "objectives": rows,
        }


def _json_rate(rate: float) -> float:
    """JSON has no Infinity; clamp the sentinel to a large finite burn."""
    return 1e9 if rate == float("inf") else rate


# -- default objective catalog ----------------------------------------------------------


def default_slos(
    pause_p99_s: float = 0.050,
    mmu_floor: float = 0.3,
    mmu_window_s: float = 0.1,
    sweep_debt_ceiling: int = 64,
    check_latency_s: float = 0.040,
) -> SloSet:
    """The stock objective catalog the CLI and CI arm.

    * ``pause-p99`` — pause under ``pause_p99_s``, 1% budget (a p99).
    * ``mmu-floor`` — MMU over ``mmu_window_s`` windows stays above
      ``mmu_floor``; 5% budget since early-run MMU is noisy.
    * ``sweep-debt`` — lazy-sweep backlog stays under the ceiling, 5%.
    * ``check-latency`` — assertion checking (ownership phase) stays
      under ``check_latency_s`` per cycle, 1% budget.
    * ``no-degradation`` — zero budget: any quarantine, engine
      disablement, OOM growth, or sink breaker trip fires immediately.
    """
    if pause_p99_s <= 0:
        raise ConfigurationError(
            f"pause objective must be > 0 seconds, got {pause_p99_s}"
        )
    if not 0.0 < mmu_floor <= 1.0:
        raise ConfigurationError(
            f"MMU floor must be in (0, 1] (a utilization), got {mmu_floor}"
        )
    if mmu_window_s <= 0 or sweep_debt_ceiling < 0 or check_latency_s <= 0:
        raise ConfigurationError(
            "MMU window and check latency must be > 0 and the sweep-debt "
            "ceiling >= 0"
        )

    def pause_ok(hub: "MonitorHub", event: "GcEvent") -> bool:
        return event.pause_s <= pause_p99_s

    def mmu_ok(hub: "MonitorHub", event: "GcEvent") -> bool:
        return hub.mmu(mmu_window_s) >= mmu_floor

    def debt_ok(hub: "MonitorHub", event: "GcEvent") -> bool:
        return event.sweep_debt_chunks <= sweep_debt_ceiling

    def checks_ok(hub: "MonitorHub", event: "GcEvent") -> bool:
        return event.ownership_s <= check_latency_s

    slos = SloSet()
    slos.add(BurnRateRule(SloObjective(
        "pause-p99", f"p99 GC pause under {pause_p99_s * 1e3:.0f}ms",
        budget=0.01, probe=pause_ok, severity="page",
    )))
    slos.add(BurnRateRule(SloObjective(
        "mmu-floor",
        f"MMU({mmu_window_s * 1e3:.0f}ms) at least {mmu_floor:.0%}",
        budget=0.05, probe=mmu_ok, severity="ticket",
    ), factor=3.0))
    slos.add(BurnRateRule(SloObjective(
        "sweep-debt", f"sweep backlog under {sweep_debt_ceiling} chunks",
        budget=0.05, probe=debt_ok, severity="ticket",
    ), factor=3.0))
    slos.add(BurnRateRule(SloObjective(
        "check-latency",
        f"assertion checking under {check_latency_s * 1e3:.0f}ms per cycle",
        budget=0.01, probe=checks_ok, severity="ticket",
    )))
    slos.add(BurnRateRule(SloObjective(
        "no-degradation",
        "no quarantine, engine disablement, OOM growth, or breaker trips",
        budget=0.0, probe=_make_degradation_probe(), severity="page",
    ), clear_good=4))
    return slos


def _make_degradation_probe() -> Callable[["MonitorHub", "GcEvent"], bool]:
    """Good while the hub has seen no *new* degradations since the last
    observation — stateful high-water mark, so one absorbed fault is one
    bad observation, not a permanently bad signal."""
    seen = {"count": 0}

    def probe(hub: "MonitorHub", event: "GcEvent") -> bool:
        now = sum(hub.degradations_by_kind.values())
        fresh = now > seen["count"]
        seen["count"] = now
        return not fresh

    return probe
