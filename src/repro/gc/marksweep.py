"""The MarkSweep collector — the paper's configuration.

"We implemented these assertions in Jikes RVM 3.0.0 using the MarkSweep
collector.  We chose MarkSweep because it is a full-heap collector, which
will check all assertions at every garbage collection." (§2.2)

Allocation is segregated-fit free-list allocation with a per-size-class run
cache in front of it (the common case is one capacity check and a
``list.pop``); collection is a full-heap mark phase (with the assertion
engine's pre-mark ownership phase and per-object encounter hooks) followed
by a chunked sweep in one of two disciplines:

* ``sweep_mode="eager"`` (default) — every chunk is swept inside the pause;
  semantics are identical to the classic mark-sweep sequence.
* ``sweep_mode="lazy"`` — the pause ends at mark end; unswept chunks are
  reclaimed incrementally on the allocation slow path (or all at once via
  :meth:`sweep_all`, the exactness escape hatch used by ``verify_heap``,
  the census, and the next collection's prologue).
"""

from __future__ import annotations

from repro.errors import HeapError, InvalidAddressError
from repro.gc.base import Collector
from repro.gc.lazysweep import LAZY_SWEEP_BATCH, ChunkSweeper
from repro.gc.stats import PhaseTimer
from repro.heap import header as hdr
from repro.heap.blocks import BlockSpace
from repro.heap.freelist import SIZE_CLASS_LOOKUP, SIZE_CLASSES
from repro.heap.object_model import ClassDescriptor, HeapObject
from repro.heap.space import FreeListSpace
from repro.heap.zones import DEFAULT_ZONE_COUNT, ZoneMap, ZonedFreeListSpace

#: Cells fetched per run-cache refill.  One refill amortizes the free-list
#: bucket lookup (or bump carve) over this many allocations.
RUN_CACHE_CELLS = 16

#: Largest request served by the run cache (the last tabled size class).
_CACHE_LIMIT = SIZE_CLASSES[-1]


class MarkSweepCollector(Collector):
    """Full-heap, non-moving mark-sweep over a segregated-fit space.

    Two space policies are available: ``"freelist"`` (simple per-size-class
    free lists; the default, and what the heap budgets are calibrated for)
    and ``"blocks"`` (Jikes-style block-structured layout with observable
    fragmentation; see :mod:`repro.heap.blocks`).  The run-cache fast path
    applies to the freelist policy; both policies support both sweep modes.
    """

    name = "marksweep"
    moving = False

    def __init__(
        self,
        heap_bytes: int,
        engine=None,
        track_paths=None,
        space_policy: str = "freelist",
        sweep_mode: str = "eager",
        hardened: bool = False,
        max_heap_bytes=None,
        gc_workers: int = 0,
        zones: int = DEFAULT_ZONE_COUNT,
    ):
        super().__init__(heap_bytes, engine, track_paths, hardened, max_heap_bytes)
        if space_policy == "freelist":
            if gc_workers > 0:
                # Zone-sharded layout: per-zone free lists at strided bases
                # behind one shared byte budget, so the zone map is exact
                # range arithmetic and GC trigger points are unchanged.
                self.space = ZonedFreeListSpace("ms", heap_bytes, zones=zones)
                self.zone_map = self.space.zone_map()
            else:
                self.space = FreeListSpace("ms", heap_bytes)
        elif space_policy == "blocks":
            self.space = BlockSpace("ms", heap_bytes)
            if gc_workers > 0:
                # The blocks layout is not zone-aware; bucket by granule.
                self.zone_map = ZoneMap.hashed(zones)
        else:
            raise HeapError(f"unknown space policy {space_policy!r}")
        self.gc_workers = gc_workers
        if sweep_mode not in ("eager", "lazy"):
            raise HeapError(f"unknown sweep mode {sweep_mode!r}")
        self.space_policy = space_policy
        self.sweep_mode = sweep_mode
        self._sweeper = ChunkSweeper(self, self.space)
        #: size class -> reserved (uncommitted) cells, popped by the fast
        #: path.  None for the blocks policy, which has no reserve API.
        self._alloc_cache: dict[int, list[int]] | None = (
            {} if space_policy == "freelist" else None
        )

    # -- allocation -----------------------------------------------------------------

    def allocate(self, cls: ClassDescriptor, length: int = 0) -> HeapObject:
        nbytes = cls.size_of(length)
        self._telemetry_allocation(nbytes)
        cache = self._alloc_cache
        if cache is not None and nbytes <= _CACHE_LIMIT:
            cell = SIZE_CLASS_LOOKUP[nbytes]
            run = cache.get(cell)
            if run and self.space.commit(run[-1], cell):
                # Fast path: table lookup + capacity check + list.pop.
                self.stats.alloc_fast_hits += 1
                address = run.pop()
            else:
                address = self._allocate_slow_cached(cell, cls, nbytes)
        else:
            address = self._allocate_slow(cls, nbytes)
        try:
            return self.heap.install(address, cls, length)
        except InvalidAddressError:
            if not self.hardened:
                raise
            # Corrupted free-list metadata handed out an address the table
            # already tracks: fence the alias and allocate again.
            space = self.space
            try:
                aliased_cell = space.cell_size(address)
            except Exception:
                aliased_cell = 0
            self._fence_aliased_cell(space, address, aliased_cell)
            return self.allocate(cls, length)

    def _try_cached(self, cell: int) -> int | None:
        """Pop a cell from the run cache, refilling it from the space."""
        cache = self._alloc_cache
        run = cache.get(cell)
        if not run:
            run = self.space.reserve_run(cell, RUN_CACHE_CELLS)
            if not run:
                return None
            cache[cell] = run
        if self.space.commit(run[-1], cell):
            return run.pop()
        return None  # reserved cells exist but the byte budget is gone

    def _allocate_slow_cached(self, cell: int, cls: ClassDescriptor, nbytes: int) -> int:
        for attempt in (0, 1):
            address = self._try_cached(cell)
            if address is not None:
                return address
            while self._sweeper.debt:
                self._sweeper.sweep_chunks(LAZY_SWEEP_BATCH)
                address = self._try_cached(cell)
                if address is not None:
                    return address
            if attempt == 0:
                self.collect(reason=f"allocation of {nbytes} bytes failed")
        # Emergency collection and debt repayment both failed; growing the
        # heap (when a ceiling allows it) is the last rung before OOM.
        while self._try_grow():
            address = self._try_cached(cell)
            if address is not None:
                self.recovery.oom_recoveries += 1
                return address
        raise self._oom(cls, nbytes, "space full after full-heap GC")

    def _allocate_slow(self, cls: ClassDescriptor, nbytes: int) -> int:
        """Uncached slow path: blocks policy and over-cache-limit requests."""
        for attempt in (0, 1):
            address = self.space.allocate(nbytes)
            if address is not None:
                return address
            while self._sweeper.debt:
                self._sweeper.sweep_chunks(LAZY_SWEEP_BATCH)
                address = self.space.allocate(nbytes)
                if address is not None:
                    return address
            if attempt == 0:
                self.collect(reason=f"allocation of {nbytes} bytes failed")
        while self._try_grow():
            address = self.space.allocate(nbytes)
            if address is not None:
                self.recovery.oom_recoveries += 1
                return address
        raise self._oom(cls, nbytes, "space full after full-heap GC")

    def _flush_alloc_cache(self) -> None:
        """Return every reserved cell to the free list (collect prologue).

        Flushing *before* this collection's sweep pushes any freed cells
        keeps the free-list LIFO discipline: the most recently freed cell is
        still the next one allocated, exactly as without the cache.
        """
        cache = self._alloc_cache
        if not cache:
            return
        space = self.space
        for cell, run in cache.items():
            if run:
                space.release_run(cell, run)
        cache.clear()

    def bytes_in_use(self) -> int:
        return self.space.bytes_in_use

    def _grow_spaces(self, delta: int) -> None:
        self.space.capacity_bytes += delta

    # -- collection -----------------------------------------------------------------

    def collect(self, reason: str = "explicit") -> None:
        spans = self.span_tracer
        with self._span("collect", kind="full", reason=reason):
            # Repay outstanding sweep debt before a new trace: the assertion
            # registry must not hold dead entries when the ownership phase
            # runs (a dead owner would resurrect its region), and
            # dead-but-unswept objects must not survive into a second
            # cycle's accounting.  Both happen outside the measured pause.
            with self._span("prologue"):
                self.sweep_all()
                self._flush_alloc_cache()
            if self.hardened:
                # Sweep debt is repaid, so mark bits are legitimately clear:
                # the sentinel can judge (and repair) the whole heap.
                self._sentinel_check("pre-gc")
            if self.paranoid:
                self._paranoid_check("pre-gc")
            pending = self._telemetry_begin("full", reason)
            with PhaseTimer(self.stats, "gc_seconds", spans, "pause"):
                self.stats.collections += 1
                self.stats.full_collections += 1
                self.gc_log.append(f"GC {self.stats.collections}: {reason}")

                tracer = self._make_tracer(reason)
                self._run_mark_phase(tracer)
                self._sweeper.schedule()
                if self.sweep_mode == "eager":
                    freed = self._sweeper.drain_eager()
                else:
                    freed = None  # chunks stay pending; the pause ends here
            if freed is not None:
                self._finish_collection(freed)
            else:
                self._finish_mark_only(self._sweeper.cutoff)
            # Serialization is mutator-side cost: the pause timer is closed.
            self._snapshot_flush()
            self._telemetry_end(pending)
            if self.hardened and self.sweep_debt() == 0:
                # Lazy mode skips this: survivors carry MARK bits until
                # their chunk sweeps, so post-GC state is not judgeable.
                self._sentinel_check("post-gc")
            if self.paranoid:
                # The walker's non-mutating mode handles outstanding sweep
                # debt itself (pending garbage is excluded, not swept).
                self._paranoid_check("post-gc")

    # -- lazy-sweep surface ------------------------------------------------------------

    def sweep_all(self) -> None:
        self._sweeper.sweep_all()

    def sweep_debt(self) -> int:
        return self._sweeper.debt

    def pending_garbage_predicate(self):
        sweeper = self._sweeper
        if not sweeper.debt:
            return None
        cutoff = sweeper.cutoff
        mark_bit = hdr.MARK_BIT

        def _is_pending_garbage(obj: HeapObject) -> bool:
            return obj.alloc_seq <= cutoff and not (obj.status & mark_bit)

        return _is_pending_garbage
