"""pseudojbb workload: healthy runs and the §3.2.1 bug reproductions."""

import pytest

from repro.core.reporting import AssertionKind
from repro.runtime.vm import VirtualMachine
from repro.workloads.jbb import JbbConfig, run_pseudojbb
from repro.workloads.jbb.entities import COMPANY, ORDER, build_company, districts_of


def jbb_vm():
    return VirtualMachine(heap_bytes=8 << 20)


SMALL = dict(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=8,
    iterations=2,
    transactions_per_iteration=150,
    gc_per_iteration=True,
)


class TestHealthyRuns:
    def test_all_assertions_quiet_when_bugs_fixed(self):
        vm = jbb_vm()
        config = JbbConfig(
            **SMALL,
            assert_dead_orders=True,
            assert_ownedby_orders=True,
            assert_instances_company=True,
            region_payments=True,
        )
        result = run_pseudojbb(vm, config)
        assert result.transactions == 300
        assert result.violations == 0
        vm.gc()
        vm.gc()
        assert len(vm.engine.log) == 0

    def test_transaction_counters_add_up(self):
        vm = jbb_vm()
        result = run_pseudojbb(vm, JbbConfig(**SMALL))
        assert (
            result.new_orders + result.payments + result.deliveries
            == result.transactions
        )
        assert result.iterations == 2

    def test_company_graph_shape(self):
        vm = jbb_vm()
        with vm.scope():
            company = build_company(vm, 2, 3, 4)
            vm.statics.set_ref("c", company.address)
        districts = districts_of(company)
        assert len(districts) == 6
        for district in districts:
            assert district["orderTable"] is not None
            assert len(district["customers"]) == 4

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            vm = jbb_vm()
            results.append(run_pseudojbb(vm, JbbConfig(**SMALL, seed=7)))
        assert results[0] == results[1]

    def test_memory_stable_without_bugs(self):
        vm = jbb_vm()
        run_pseudojbb(vm, JbbConfig(**SMALL))
        vm.gc()
        vm.gc()
        # After the run every Company iteration graph is dead.
        assert vm.heap.stats.objects_live == 0


class TestLastOrderLeak:
    """'When the Order is destroyed, the lastOrder field in the associated
    Customer is not cleared, and this reference prevents the Order from
    being reclaimed.'"""

    def test_leak_detected_by_assert_dead(self):
        vm = jbb_vm()
        config = JbbConfig(**SMALL, leak_last_order=True, assert_dead_orders=True)
        result = run_pseudojbb(vm, config)
        dead = vm.engine.log.of_kind(AssertionKind.DEAD)
        assert len(dead) > 0
        assert all(v.type_name == ORDER for v in dead)

    def test_path_goes_through_customer(self):
        vm = jbb_vm()
        config = JbbConfig(**SMALL, leak_last_order=True, assert_dead_orders=True)
        run_pseudojbb(vm, config)
        violation = vm.engine.log.of_kind(AssertionKind.DEAD)[0]
        names = violation.path.type_names()
        assert "spec.jbb.Customer" in names
        assert names[-1] == ORDER

    def test_repair_matches_paper(self):
        """The fix: clear Customer.lastOrder in destroy() — exactly what
        clear_last_order=True (the default) does."""
        vm = jbb_vm()
        config = JbbConfig(**SMALL, leak_last_order=False, assert_dead_orders=True)
        run_pseudojbb(vm, config)
        assert len(vm.engine.log.of_kind(AssertionKind.DEAD)) == 0


class TestOrderTableLeak:
    """The Jump & McKinley leak: completed orders never leave the BTree."""

    def test_detected_by_assert_dead(self):
        vm = jbb_vm()
        config = JbbConfig(**SMALL, leak_order_table=True, assert_dead_orders=True)
        run_pseudojbb(vm, config)
        dead = vm.engine.log.of_kind(AssertionKind.DEAD)
        assert len(dead) > 0
        # Figure 1's path: the leak runs through the longBTree.
        names = dead[0].path.type_names()
        assert "spec.jbb.infra.Collections.longBTree" in names
        assert "spec.jbb.infra.Collections.longBTreeNode" in names

    def test_detected_by_ownership_without_knowing_death_point(self):
        """'The ownership assertion is an easier way to detect such problems
        since the user does not need to know when an object should be
        dead.'  Destroyed-but-leaked orders stay in the table, and dead
        customers' lastOrder references... the ownership variant flags
        orders reachable outside their orderTable."""
        vm = jbb_vm()
        config = JbbConfig(
            **SMALL,
            leak_order_table=True,
            leak_last_order=True,
            assert_dead_orders=True,
            assert_ownedby_orders=True,
        )
        result = run_pseudojbb(vm, config)
        assert result.violations > 0

    def test_heap_grows_with_leak(self):
        grown, fixed = [], []
        for leak, sink in ((True, grown), (False, fixed)):
            vm = jbb_vm()
            run_pseudojbb(
                vm,
                JbbConfig(
                    warehouses=1,
                    districts_per_warehouse=1,
                    customers_per_district=8,
                    iterations=1,
                    transactions_per_iteration=400,
                    leak_order_table=leak,
                    gc_per_iteration=True,
                ),
            )
            sink.append(vm.heap.stats.objects_live)
        assert grown[0] > fixed[0]


class TestOldCompanyDrag:
    """'The previous Company object cannot be reclaimed... not a memory leak
    but an example of memory drag.'"""

    def test_drag_detected_by_assert_instances(self):
        vm = jbb_vm()
        config = JbbConfig(
            **{**SMALL, "iterations": 3},
            drag_old_company=True,
            assert_instances_company=True,
        )
        run_pseudojbb(vm, config)
        violations = vm.engine.log.of_kind(AssertionKind.INSTANCES)
        assert len(violations) >= 1
        assert violations[0].details["type"] == COMPANY
        assert violations[0].details["count"] == 2

    def test_no_drag_when_fixed(self):
        vm = jbb_vm()
        config = JbbConfig(
            **{**SMALL, "iterations": 3},
            drag_old_company=False,
            assert_instances_company=True,
        )
        run_pseudojbb(vm, config)
        assert len(vm.engine.log.of_kind(AssertionKind.INSTANCES)) == 0

    def test_drag_detected_by_assert_dead_on_company(self):
        vm = jbb_vm()
        config = JbbConfig(
            **{**SMALL, "iterations": 3}, drag_old_company=True, assert_dead_orders=True
        )
        run_pseudojbb(vm, config)
        dead = vm.engine.log.of_kind(AssertionKind.DEAD)
        assert any(v.type_name == COMPANY for v in dead)


class TestRegionPayments:
    def test_payment_regions_quiet(self):
        vm = jbb_vm()
        run_pseudojbb(vm, JbbConfig(**SMALL, region_payments=True))
        vm.gc()
        assert len(vm.engine.log.of_kind(AssertionKind.ALLDEAD)) == 0
