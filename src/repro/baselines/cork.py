"""Cork-style type-growth leak detection (Jump & McKinley, POPL 2007).

Cork piggybacks on the collector like GC assertions do, but it is a
*heuristic*: it summarizes the live heap per type at each collection and
reports types whose volume grows persistently.  The paper's contrast
(§2.7): "Our information is similar to that provided by Cork, but much more
precise: our path consists of object instances, not just types."

:class:`TypeGrowthProfiler` installs as a VM gc-observer.  After each
collection it takes a per-class census of live bytes; :meth:`report` flags
classes whose volume rose in at least ``min_growth_fraction`` of the
observed windows and grew overall by ``min_total_ratio``.  The output is a
ranked list of *types* — no instances, no paths, and a programmer still has
to find the actual leak site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.runtime.vm import VirtualMachine


@dataclass
class GrowthReport:
    """One suspicious type, Cork-style."""

    type_name: str
    first_bytes: int
    last_bytes: int
    rising_fraction: float
    samples: list[int] = field(default_factory=list)

    @property
    def total_ratio(self) -> float:
        return self.last_bytes / self.first_bytes if self.first_bytes else float("inf")

    def render(self) -> str:
        return (
            f"type {self.type_name}: {self.first_bytes} -> {self.last_bytes} bytes "
            f"over {len(self.samples)} GCs "
            f"(rising in {self.rising_fraction:.0%} of intervals)"
        )


class TypeGrowthProfiler:
    """Per-type live-volume census at every collection."""

    def __init__(self, vm: "VirtualMachine"):
        self.vm = vm
        #: class name -> list of live-byte censuses, one per observed GC.
        self.history: dict[str, list[int]] = {}
        self.collections_observed = 0
        vm.gc_observers.append(self._observe)

    def detach(self) -> None:
        self.vm.gc_observers.remove(self._observe)

    # -- census ---------------------------------------------------------------------

    def _observe(self, vm: "VirtualMachine", freed: set[int]) -> None:
        census: dict[str, int] = {}
        for obj in vm.heap:
            name = obj.cls.name
            census[name] = census.get(name, 0) + obj.size_bytes
        self.collections_observed += 1
        for name in set(self.history) | set(census):
            self.history.setdefault(name, []).append(census.get(name, 0))

    # -- reporting -------------------------------------------------------------------

    def report(
        self,
        min_samples: int = 3,
        min_growth_fraction: float = 0.75,
        min_total_ratio: float = 1.5,
    ) -> list[GrowthReport]:
        """Types whose live volume keeps growing — *potential* leaks only.

        Matches Cork's spirit: a type qualifies when its volume rose in at
        least ``min_growth_fraction`` of observed GC intervals and its
        final volume is ``min_total_ratio`` times its first non-zero one.
        """
        reports: list[GrowthReport] = []
        for name, samples in self.history.items():
            # Align histories: drop leading zeros before the type existed.
            trimmed = samples[:]
            while trimmed and trimmed[0] == 0:
                trimmed.pop(0)
            if len(trimmed) < min_samples:
                continue
            rises = sum(1 for a, b in zip(trimmed, trimmed[1:]) if b > a)
            intervals = len(trimmed) - 1
            rising_fraction = rises / intervals if intervals else 0.0
            first, last = trimmed[0], trimmed[-1]
            if (
                rising_fraction >= min_growth_fraction
                and first > 0
                and last / first >= min_total_ratio
            ):
                reports.append(
                    GrowthReport(
                        type_name=name,
                        first_bytes=first,
                        last_bytes=last,
                        rising_fraction=rising_fraction,
                        samples=trimmed,
                    )
                )
        reports.sort(key=lambda r: r.last_bytes - r.first_bytes, reverse=True)
        return reports
