"""Benchmark-harness unit tests: statistics and configuration plumbing."""

import math

import pytest

from repro.bench.methodology import (
    Config,
    Measurement,
    OverheadRow,
    Sample,
    build_vm,
    confidence_interval_90,
    geometric_mean,
    mean,
    run_sample,
    run_trial,
)
from repro.workloads.suite import SuiteEntry, build_suite


class TestStatistics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geometric_mean_ignores_nonpositive(self):
        assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0

    def test_ci_zero_for_tiny_samples(self):
        assert confidence_interval_90([]) == 0.0
        assert confidence_interval_90([1.0]) == 0.0

    def test_ci_zero_for_constant_samples(self):
        assert confidence_interval_90([2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_ci_scales_with_spread(self):
        tight = confidence_interval_90([1.0, 1.01, 0.99, 1.0])
        wide = confidence_interval_90([1.0, 2.0, 0.5, 1.5])
        assert wide > tight > 0

    def test_ci_shrinks_with_more_samples(self):
        few = confidence_interval_90([1.0, 2.0])
        many = confidence_interval_90([1.0, 2.0] * 8)
        assert many < few


class TestOverheadRow:
    def test_ratio_and_pct(self):
        row = OverheadRow("x", 2.0, 2.2, 0.0, 0.0, {}, {})
        assert row.ratio == pytest.approx(1.1)
        assert row.overhead_pct == pytest.approx(10.0)

    def test_zero_base_is_nan(self):
        row = OverheadRow("x", 0.0, 1.0, 0.0, 0.0, {}, {})
        assert math.isnan(row.ratio)


class TestConfigurations:
    def test_base_vm_has_no_infrastructure(self):
        entry = build_suite()["jess"]
        vm = build_vm(entry, Config.BASE)
        assert vm.engine is None
        assert not vm.collector.track_paths
        assert vm.collector.heap_bytes == entry.heap_bytes

    def test_infrastructure_vm_has_engine_and_paths(self):
        entry = build_suite()["jess"]
        vm = build_vm(entry, Config.INFRASTRUCTURE)
        assert vm.engine is not None
        assert vm.collector.track_paths

    def test_with_assertions_requires_asserted_runner(self):
        entry = build_suite()["jess"]  # no asserted variant
        with pytest.raises(ValueError):
            run_trial(entry, Config.WITH_ASSERTIONS)


class TestTrials:
    def test_run_trial_returns_measurement(self):
        entry = build_suite()["mpegaudio"]
        m = run_trial(entry, Config.BASE)
        assert isinstance(m, Measurement)
        assert m.total_s > 0
        assert m.gc_s >= 0
        assert m.mutator_s <= m.total_s
        assert m.counters["collections"] == m.collections

    def test_counters_deterministic_across_trials(self):
        entry = build_suite()["mpegaudio"]
        a = run_trial(entry, Config.BASE)
        b = run_trial(entry, Config.BASE)
        assert a.counters == b.counters

    def test_run_sample_collects_n(self):
        entry = build_suite()["mpegaudio"]
        sample = run_sample(entry, Config.BASE, trials=3, warmup=0)
        assert len(sample.measurements) == 3
        assert len(sample.totals()) == 3
        assert sample.mean_total() > 0

    def test_sample_counters_from_last_trial(self):
        entry = build_suite()["mpegaudio"]
        sample = run_sample(entry, Config.BASE, trials=2, warmup=0)
        assert sample.counters() == sample.measurements[-1].counters

    def test_empty_sample_counters(self):
        sample = Sample("x", Config.BASE)
        assert sample.counters() == {}
