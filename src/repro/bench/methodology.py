"""Measurement methodology for the figure-regeneration harness.

Follows §3.1.1 of the paper where it transfers to a simulator:

* Each benchmark runs at a fixed heap of **2x its minimum** (calibrated in
  :mod:`repro.workloads.suite`).
* Each (benchmark, configuration) pair is measured over **N trials** on a
  fresh VM; we report means with **90% confidence intervals** (Student t).
* Ratios across benchmarks are combined with the **geometric mean**, like
  the paper's "2.75% (the geometric mean)".

Wall-clock numbers in a Python simulator are noisy relative to the paper's
single-digit percentages, so every measurement also carries deterministic
*work counters* (objects traced, header-bit checks, ownee binary-search
probes...) that decompose the overhead exactly and reproducibly.
"""

from __future__ import annotations

import enum
import math
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.runtime.vm import VirtualMachine
from repro.workloads.suite import SuiteEntry

try:  # scipy is available in this environment; fall back to normal quantile.
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None


class Config(enum.Enum):
    """The paper's three measured configurations (§3.1.1)."""

    BASE = "Base"                      # unmodified VM: no engine, no paths
    INFRASTRUCTURE = "Infrastructure"  # engine + path tracking, no assertions
    WITH_ASSERTIONS = "WithAssertions" # engine + the paper's assertion placements


@dataclass
class Measurement:
    """One trial of one (benchmark, configuration) pair."""

    total_s: float
    gc_s: float
    collections: int
    counters: dict

    @property
    def mutator_s(self) -> float:
        return max(self.total_s - self.gc_s, 0.0)


@dataclass
class Sample:
    """All trials of one (benchmark, configuration) pair."""

    benchmark: str
    config: Config
    measurements: list[Measurement] = field(default_factory=list)

    def totals(self) -> list[float]:
        return [m.total_s for m in self.measurements]

    def gcs(self) -> list[float]:
        return [m.gc_s for m in self.measurements]

    def mutators(self) -> list[float]:
        return [m.mutator_s for m in self.measurements]

    def mean_total(self) -> float:
        return mean(self.totals())

    def mean_gc(self) -> float:
        return mean(self.gcs())

    def counters(self) -> dict:
        """Counters from the last trial (deterministic across trials)."""
        return self.measurements[-1].counters if self.measurements else {}


def mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def geometric_mean(values: list[float]) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def confidence_interval_90(values: list[float]) -> float:
    """Half-width of the 90% CI of the mean (0 for < 2 samples)."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    var = sum((v - m) ** 2 for v in values) / (n - 1)
    sd = math.sqrt(var)
    if _scipy_stats is not None:
        t = float(_scipy_stats.t.ppf(0.95, n - 1))
    else:  # pragma: no cover
        t = 1.645
    return t * sd / math.sqrt(n)


def build_vm(entry: SuiteEntry, config: Config, collector: str = "marksweep") -> VirtualMachine:
    """A fresh VM in the requested configuration at the calibrated heap."""
    if config is Config.BASE:
        return VirtualMachine(
            heap_bytes=entry.heap_bytes,
            collector=collector,
            assertions=False,
            track_paths=False,
        )
    return VirtualMachine(
        heap_bytes=entry.heap_bytes, collector=collector, assertions=True
    )


_COUNTER_FIELDS = (
    "collections",
    "objects_traced",
    "edges_traced",
    "objects_swept",
    "header_bit_checks",
    "instance_count_increments",
    "ownee_lookups",
    "ownee_search_probes",
    "ownees_checked",
    "path_entries_tagged",
    "violations_detected",
)


def run_trial(entry: SuiteEntry, config: Config, collector: str = "marksweep") -> Measurement:
    """One trial: fresh VM, run the workload, read timers and counters."""
    vm = build_vm(entry, config, collector)
    if config is Config.WITH_ASSERTIONS:
        runner = entry.run_with_assertions
        if runner is None:
            raise ValueError(f"benchmark {entry.name!r} has no asserted variant")
    else:
        runner = entry.run
    start = time.perf_counter()
    runner(vm)
    total = time.perf_counter() - start
    stats = vm.stats
    counters = {name: getattr(stats, name) for name in _COUNTER_FIELDS}
    if vm.engine is not None:
        counters["assertion_calls"] = dict(
            (k.value, v) for k, v in vm.engine.registry.calls.items() if v
        )
    return Measurement(
        total_s=total,
        gc_s=stats.gc_seconds,
        collections=stats.collections,
        counters=counters,
    )


def run_sample(
    entry: SuiteEntry,
    config: Config,
    trials: int,
    collector: str = "marksweep",
    warmup: int = 1,
) -> Sample:
    """N measured trials (after ``warmup`` unrecorded ones)."""
    sample = Sample(entry.name, config)
    for _ in range(warmup):
        run_trial(entry, config, collector)
    for _ in range(trials):
        sample.measurements.append(run_trial(entry, config, collector))
    return sample


@dataclass
class OverheadRow:
    """One benchmark's Base-vs-other comparison for a figure."""

    benchmark: str
    base_mean: float
    other_mean: float
    base_ci: float
    other_ci: float
    counters_base: dict
    counters_other: dict

    @property
    def ratio(self) -> float:
        if self.base_mean <= 0:
            return float("nan")
        return self.other_mean / self.base_mean

    @property
    def overhead_pct(self) -> float:
        return (self.ratio - 1.0) * 100.0


def compare(
    entry: SuiteEntry,
    config_a: Config,
    config_b: Config,
    metric: str,
    trials: int,
    collector: str = "marksweep",
) -> OverheadRow:
    """Measure two configurations of one benchmark and compare ``metric``
    (``"total"``, ``"gc"``, or ``"mutator"``)."""
    sample_a = run_sample(entry, config_a, trials, collector)
    sample_b = run_sample(entry, config_b, trials, collector)
    pick = {
        "total": Sample.totals,
        "gc": Sample.gcs,
        "mutator": Sample.mutators,
    }[metric]
    values_a = pick(sample_a)
    values_b = pick(sample_b)
    return OverheadRow(
        benchmark=entry.name,
        base_mean=mean(values_a),
        other_mean=mean(values_b),
        base_ci=confidence_interval_90(values_a),
        other_ci=confidence_interval_90(values_b),
        counters_base=sample_a.counters(),
        counters_other=sample_b.counters(),
    )
