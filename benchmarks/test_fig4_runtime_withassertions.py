"""Figure 4: run-time overhead with the paper's assertions added.

Paper: _209_db +1.02% vs Base (695 assert-dead + 15,553 assert-ownedby
calls); pseudojbb +1.84% vs Base (1 assert-instances + 31,038
assert-ownedby calls).  "Even with a large number of assertions to check
... run-time increases by less than 2%."

Shape claim: checking thousands of assertions leaves *total* run time
within a few percent of Base — the checking cost hides inside the
collector (Figure 5 shows where it went).
"""

from __future__ import annotations

from benchmarks.conftest import trials
from repro.bench import withassertions_figures

_cache: dict = {}


def figures():
    if "figs" not in _cache:
        _cache["figs"] = withassertions_figures(trials=trials())
    return _cache["figs"]


def test_fig4_runtime_withassertions(once, figure_report):
    fig4 = once(lambda: figures()["fig4"])
    figure_report.append(fig4.render())
    assert {row.benchmark for row in fig4.rows} == {"db", "pseudojbb"}
    # Shape: total-time overhead stays small even with assertions checked
    # at every collection (paper: ~1-2%; we allow simulator noise).
    assert fig4.geomean_overhead_pct < 30.0


def test_fig4_assertions_actually_registered(once):
    fig4 = once(lambda: figures()["fig4"])
    db_calls = fig4.row("db").counters_other["assertion_calls"]
    jbb_calls = fig4.row("pseudojbb").counters_other["assertion_calls"]
    # The paper's placements: db uses assert-dead + assert-ownedby;
    # pseudojbb adds assert-instances and assert-ownedby (plus destroy()
    # assert-deads).
    assert db_calls["assert-dead"] > 0
    assert db_calls["assert-ownedby"] > 0
    assert jbb_calls["assert-ownedby"] > 0
    assert jbb_calls["assert-instances"] == 1
    # Base runs registered nothing.
    assert "assertion_calls" not in fig4.row("db").counters_base
