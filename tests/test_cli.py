"""CLI (`python -m repro`) tests, driven through main(argv)."""

import json
import pathlib

import pytest

from repro.__main__ import main

PROGRAMS = pathlib.Path(__file__).resolve().parent.parent / "examples" / "programs"


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "GC assertions" in out
        assert "pseudojbb" in out
        assert "marksweep" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Warning: an object that was asserted dead is reachable." in out
        assert "1 satisfied" in out

    def test_verify(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        for collector in ("marksweep", "semispace", "generational"):
            assert collector in out
        assert "OK" in out
        assert "FAILED" not in out

    def test_minij(self, capsys):
        path = str(PROGRAMS / "linked_list.minij")
        assert main(["minij", path]) == 0
        out = capsys.readouterr().out
        assert "sum: 55" in out

    def test_minij_custom_entry(self, tmp_path, capsys):
        source = tmp_path / "t.minij"
        source.write_text("def go(): void { print(7); }")
        assert main(["minij", str(source), "--entry", "go"]) == 0
        assert "7" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_figures_fast(self, capsys):
        assert main(["figures", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "fig5" in out
        assert "geomean" in out

    def test_stats_human(self, capsys):
        assert main(["stats", "--workload", "db"]) == 0
        out = capsys.readouterr().out
        assert "collections:" in out
        assert "pause times:" in out
        assert "live census" in out

    def test_stats_json_has_events_percentiles_census(self, capsys):
        assert main(["stats", "--workload", "pseudojbb", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"], "expected per-collection events"
        event = summary["events"][0]
        assert {"seq", "kind", "pause_s", "mark_s", "objects_freed"} <= set(event)
        for key in ("p50", "p90", "p99"):
            assert key in summary["pause_seconds"]
        assert summary["census"]["classes"], "expected a per-class census"

    def test_stats_prometheus(self, capsys):
        assert main(["stats", "--workload", "db", "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_gc_pause_seconds histogram" in out
        assert "repro_gc_collections_total" in out

    def test_stats_jsonl_sink(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        assert main(["stats", "--workload", "db", "--jsonl", str(path)]) == 0
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows and rows[0]["seq"] == 1

    def test_stats_unknown_workload(self, capsys):
        assert main(["stats", "--workload", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().out

    def test_figures_json_out(self, tmp_path, capsys):
        path = tmp_path / "BENCH_figures.json"
        assert main(["figures", "--trials", "1", "--json-out", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-bench-figures/1"
        assert payload["trials"] == 1
        assert "fig2" in payload["figures"]
        assert "fig5" in payload["figures"]
        fig2 = payload["figures"]["fig2"]
        assert "geomean_overhead_pct" in fig2
        assert "pseudojbb" in fig2["rows"]
