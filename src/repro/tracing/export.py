"""Chrome ``trace_event`` JSON export — loadable in Perfetto directly.

The exported file follows the Trace Event Format's JSON-object form::

    {"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}

* Span begins/ends become ``ph: "B"`` / ``ph: "E"`` duration events; the
  recorder's stack discipline guarantees they are balanced and properly
  nested, and :func:`validate_chrome_trace` (shared by the tier-1 schema
  test and the CI ``trace-smoke`` job) re-verifies it on the serialized
  form.
* Instants become ``ph: "i"`` with thread scope, counters ``ph: "C"``
  (Perfetto renders those as graph lanes — sweep debt over time).
* Parallel-mark worker windows become ``ph: "X"`` *complete* events on
  their own synthetic ``tid`` lanes (named ``mark-worker-N`` via metadata),
  so worker activity renders side by side under the ``mark`` span.
* Timestamps are microseconds relative to the tracer's ``t0`` — always
  monotonically non-decreasing because the recorder is single-threaded.
* ``ph: "M"`` metadata events name the process and thread tracks.

Everything runs in one simulated mutator thread (collections are
stop-the-world), so one ``(pid, tid)`` track carries all spans: in-pause
phases nest under ``collect``, lazy-sweep slices appear between pauses at
their true mutator-time position.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Optional, Union

from repro.tracing.spans import WORKER_TRACK_BASE

if TYPE_CHECKING:
    from repro.tracing.spans import SpanTracer

#: Schema tag recorded in ``otherData`` (the trace body itself is the
#: standard Chrome format; this versions *our* args/metadata layout).
TRACE_SCHEMA = "repro-trace/1"

#: Synthetic ids for the single simulated process/thread.
TRACE_PID = 1
TRACE_TID = 1


def chrome_trace_events(tracer: "SpanTracer") -> list[dict]:
    """Convert the recorder's event stream to Chrome trace_event dicts."""
    t0 = tracer.t0
    out: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "ts": 0,
            "args": {"name": "repro-vm"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "ts": 0,
            "args": {"name": "mutator+gc"},
        },
    ]
    # Synthetic worker lanes get thread_name metadata up front.
    worker_tracks = sorted({e[6] for e in tracer.events if e[0] == "X"})
    for track in worker_tracks:
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": track,
                "ts": 0,
                "args": {"name": f"mark-worker-{track - WORKER_TRACK_BASE}"},
            }
        )
    append = out.append
    for event in tracer.events:
        ph = event[0]
        if ph == "B":
            _ph, name, cat, ts, args = event
            row = {
                "name": name,
                "cat": cat,
                "ph": "B",
                "ts": (ts - t0) * 1e6,
                "pid": TRACE_PID,
                "tid": TRACE_TID,
            }
            if args:
                row["args"] = args
        elif ph == "E":
            _ph, name, ts = event
            row = {
                "name": name,
                "ph": "E",
                "ts": (ts - t0) * 1e6,
                "pid": TRACE_PID,
                "tid": TRACE_TID,
            }
        elif ph == "X":
            _ph, name, cat, ts, dur, args, track = event
            row = {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": (ts - t0) * 1e6,
                "dur": dur * 1e6,
                "pid": TRACE_PID,
                "tid": track,
            }
            if args:
                row["args"] = args
        elif ph == "i":
            _ph, name, cat, ts, args = event
            row = {
                "name": name,
                "cat": cat,
                "ph": "i",
                "s": "t",
                "ts": (ts - t0) * 1e6,
                "pid": TRACE_PID,
                "tid": TRACE_TID,
            }
            if args:
                row["args"] = args
        else:  # "C"
            _ph, name, ts, values = event
            row = {
                "name": name,
                "ph": "C",
                "ts": (ts - t0) * 1e6,
                "pid": TRACE_PID,
                "tid": TRACE_TID,
                "args": values,
            }
        append(row)
    return out


def trace_payload(tracer: "SpanTracer", meta: Optional[dict] = None) -> dict:
    """The full JSON-object-format payload for one recording."""
    other = {"schema": TRACE_SCHEMA}
    if meta:
        other.update(meta)
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    tracer: "SpanTracer", path: str, meta: Optional[dict] = None
) -> dict:
    """Serialize the recording to ``path``; returns a small summary."""
    payload = trace_payload(tracer, meta)
    with open(path, "w") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    return {
        "path": path,
        "events": len(payload["traceEvents"]),
        "spans": tracer.spans_ended,
        "file_bytes": os.path.getsize(path),
    }


def validate_chrome_trace(source: Union[str, dict]) -> list[str]:
    """Check a trace (path or parsed payload) against the format contract.

    Returns a list of problem strings — empty means the trace is valid.
    Verified properties (the tier-1 schema test and CI both call this):

    * top level is an object with a ``traceEvents`` list;
    * every event carries ``ph``, ``pid``, ``tid``, and a numeric ``ts``;
    * timestamps are non-negative and monotonically non-decreasing;
    * ``B``/``E`` events balance per ``(pid, tid)`` with matching names
      (properly nested, nothing left open, no stray ``E``).
    """
    if isinstance(source, str):
        try:
            with open(source) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            return [f"cannot load {source}: {exc}"]
    else:
        payload = source
    problems: list[str] = []
    if not isinstance(payload, dict) or not isinstance(
        payload.get("traceEvents"), list
    ):
        return ["top level must be an object with a 'traceEvents' list"]
    events = payload["traceEvents"]
    stacks: dict[tuple, list[str]] = {}
    last_ts: Optional[float] = None
    for idx, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {idx}: not an object")
            continue
        ph = event.get("ph")
        if ph is None:
            problems.append(f"event {idx}: missing 'ph'")
            continue
        for field in ("pid", "tid"):
            if field not in event:
                problems.append(f"event {idx} ({ph} {event.get('name')}): missing {field!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {idx} ({ph} {event.get('name')}): missing numeric 'ts'")
            continue
        if ts < 0:
            problems.append(f"event {idx}: negative ts {ts}")
        if ph != "M":
            if last_ts is not None and ts < last_ts:
                problems.append(
                    f"event {idx} ({ph} {event.get('name')}): "
                    f"ts {ts} < previous {last_ts} (not monotonic)"
                )
            last_ts = ts
        track = (event.get("pid"), event.get("tid"))
        if ph == "B":
            stacks.setdefault(track, []).append(event.get("name", ""))
        elif ph == "E":
            stack = stacks.get(track)
            if not stack:
                problems.append(f"event {idx}: 'E' with no open span on {track}")
            else:
                opened = stack.pop()
                name = event.get("name")
                if name is not None and name != opened:
                    problems.append(
                        f"event {idx}: 'E' name {name!r} does not close open span {opened!r}"
                    )
    for track, stack in stacks.items():
        if stack:
            problems.append(f"track {track}: {len(stack)} span(s) left open: {stack}")
    return problems
