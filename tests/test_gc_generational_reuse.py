"""Regression: promotion into same-GC-freed cells must not corrupt metadata.

The generational full-heap collection frees mature cells during its sweep
and then promotes nursery survivors — which the free list serves from the
cells just freed.  Registry/queue purging therefore has to happen *between*
sweeping and promotion: purging afterwards (by address) would delete the
metadata of live, just-promoted objects that landed in recycled cells.

This test pins the exact scenario the soak test originally exposed.
"""

import pytest

from repro.gc.verify import verify_heap
from repro.heap import header as hdr
from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine


@pytest.fixture
def gen_vm():
    return VirtualMachine(heap_bytes=1 << 20, collector="generational")


def test_promoted_ownee_keeps_registry_entry(gen_vm):
    vm = gen_vm
    cls = vm.define_class("R", [("link", FieldKind.REF), ("id", FieldKind.INT)])

    # 1. A sacrificial object of the same size class, promoted to mature...
    with vm.scope():
        sacrifice = vm.new(cls, id=0)
        vm.statics.set_ref("s", sacrifice.address)
    vm.minor_gc()
    assert vm.collector.mature.contains(sacrifice.obj.address)
    # ...then unrooted, so the next full GC frees its mature cell.
    vm.statics.drop_ref("s")

    # 2. A live owner/ownee pair still in the nursery.
    with vm.scope():
        owner = vm.new(cls, id=1)
        ownee = vm.new(cls, id=2)
        owner["link"] = ownee
        vm.statics.set_ref("owner", owner.address)
        vm.assertions.assert_ownedby(owner, ownee, site="regression")
    assert vm.collector.nursery.contains(owner.obj.address)

    freed_cell = sacrifice.obj.address

    # 3. Full GC: the sacrifice dies, owner+ownee are promoted — one of
    # them recycles the freed mature cell.
    vm.gc()
    assert sacrifice.obj.is_freed
    assert owner.is_live and ownee.is_live
    promoted = {owner.obj.address, ownee.obj.address}
    assert freed_cell in promoted, "test precondition: a cell was recycled"

    # The registry followed the promotion instead of being purged.
    registry = vm.engine.registry
    assert registry.owner_of(ownee.obj.address) == owner.obj.address
    assert owner.obj.address in registry.owners
    assert ownee.obj.test(hdr.OWNEE_BIT)
    assert verify_heap(vm) == []

    # And the next collection checks cleanly — no phantom misuse reports,
    # no unowned-ownee violations.
    vm.gc()
    assert len(vm.engine.log) == 0


def test_promoted_dead_assertion_keeps_site(gen_vm):
    vm = gen_vm
    cls = vm.define_class("R", [("link", FieldKind.REF)])
    with vm.scope():
        sacrifice = vm.new(cls)
        vm.statics.set_ref("s", sacrifice.address)
    vm.minor_gc()
    vm.statics.drop_ref("s")

    with vm.scope():
        victim = vm.new(cls)
        vm.statics.set_ref("keep", victim.address)  # intentionally kept alive
        vm.assertions.assert_dead(victim, site="pinned-site")

    vm.gc()
    # The violation fires with its registered site, even though the victim
    # may now occupy the sacrifice's recycled cell.
    violations = vm.engine.log.violations
    assert len(violations) == 1
    assert violations[0].site == "pinned-site"
    assert verify_heap(vm) == []


def test_region_queue_entries_follow_promotion(gen_vm):
    vm = gen_vm
    cls = vm.define_class("R", [("link", FieldKind.REF)])
    with vm.scope():
        sacrifice = vm.new(cls)
        vm.statics.set_ref("s", sacrifice.address)
    vm.minor_gc()
    vm.statics.drop_ref("s")

    vm.assertions.start_region(label="regression")
    with vm.scope():
        escapee = vm.new(cls)
        vm.statics.set_ref("escaped", escapee.address)
    vm.gc()  # full GC mid-region: the queue entry must follow the move
    assert vm.main_thread.region_queue == [escapee.obj.address]

    vm.assertions.assert_alldead(site="regression end")
    vm.gc()
    assert len(vm.engine.log) == 1  # the escapee is correctly reported
    assert vm.engine.log.violations[0].address == escapee.obj.address
