"""In-text assertion-volume table (§3.1.2).

Paper numbers for the WithAssertions runs:

* _209_db — 695 calls to assert-dead, 15,553 calls to assert-ownedBy,
  ~15,274 ownee objects checked per GC.
* pseudojbb — 1 call to assert-instances, 31,038 calls to assert-ownedBy,
  but only ~420 ownees checked per GC ("Order objects are relatively
  short-lived ... there is a great deal of churn").

Absolute counts scale with workload size; the *relationships* are the
reproducible claims:

1. call volume is large in both (thousands of registrations);
2. db's ownees-per-GC is the same order as its ownedby call volume
   (entries live long), while pseudojbb's ownees-per-GC is a small
   fraction of its call volume (orders churn).

``REPRO_BENCH_FULL=1`` switches to paper-scale configurations.
"""

from __future__ import annotations

from benchmarks.conftest import full_scale
from repro.core.reporting import AssertionKind
from repro.runtime.vm import VirtualMachine
from repro.workloads.db import DbConfig, run_db
from repro.workloads.jbb import JbbConfig, run_pseudojbb
from repro.workloads.suite import HEAP_BUDGETS

PAPER = {
    "db_dead": 695,
    "db_ownedby": 15553,
    "db_ownees_per_gc": 15274,
    "jbb_instances": 1,
    "jbb_ownedby": 31038,
    "jbb_ownees_per_gc": 420,
}


def _db_config():
    if full_scale():
        config = DbConfig.paper_scale()
        config.assert_ownedby_entries = True
        config.assert_dead_on_delete = True
        return config, 64 << 20
    return (
        DbConfig(assert_ownedby_entries=True, assert_dead_on_delete=True),
        HEAP_BUDGETS["db"],
    )


def _jbb_config():
    if full_scale():
        config = JbbConfig.paper_scale()
        config.assert_dead_orders = True
        config.assert_ownedby_orders = True
        config.assert_instances_company = True
        return config, 64 << 20
    return (
        JbbConfig(
            assert_dead_orders=True,
            assert_ownedby_orders=True,
            assert_instances_company=True,
        ),
        HEAP_BUDGETS["pseudojbb"],
    )


def _volume_table():
    db_config, db_heap = _db_config()
    vm_db = VirtualMachine(heap_bytes=db_heap)
    run_db(vm_db, db_config)
    db_calls = vm_db.assertions.call_counts()
    db_gcs = max(vm_db.stats.collections, 1)
    db_row = {
        "assert_dead_calls": db_calls["assert-dead"],
        "assert_ownedby_calls": db_calls["assert-ownedby"],
        "ownees_per_gc": vm_db.stats.ownees_checked / db_gcs,
        "collections": vm_db.stats.collections,
    }

    jbb_config, jbb_heap = _jbb_config()
    vm_jbb = VirtualMachine(heap_bytes=jbb_heap)
    run_pseudojbb(vm_jbb, jbb_config)
    jbb_calls = vm_jbb.assertions.call_counts()
    jbb_gcs = max(vm_jbb.stats.collections, 1)
    jbb_row = {
        "assert_instances_calls": jbb_calls["assert-instances"],
        "assert_ownedby_calls": jbb_calls["assert-ownedby"],
        "assert_dead_calls": jbb_calls["assert-dead"],
        "ownees_per_gc": vm_jbb.stats.ownees_checked / jbb_gcs,
        "collections": vm_jbb.stats.collections,
    }
    return db_row, jbb_row


def test_assertion_volume_table(once, figure_report):
    db_row, jbb_row = once(_volume_table)

    lines = ["§3.1.2 assertion-volume table (paper-vs-measured):"]
    lines.append(
        f"  db:  assert-dead {db_row['assert_dead_calls']} (paper {PAPER['db_dead']}), "
        f"assert-ownedby {db_row['assert_ownedby_calls']} (paper {PAPER['db_ownedby']}), "
        f"ownees/GC {db_row['ownees_per_gc']:.0f} (paper {PAPER['db_ownees_per_gc']}), "
        f"GCs {db_row['collections']}"
    )
    lines.append(
        f"  jbb: assert-instances {jbb_row['assert_instances_calls']} (paper 1), "
        f"assert-ownedby {jbb_row['assert_ownedby_calls']} (paper {PAPER['jbb_ownedby']}), "
        f"ownees/GC {jbb_row['ownees_per_gc']:.0f} (paper {PAPER['jbb_ownees_per_gc']}), "
        f"GCs {jbb_row['collections']}"
    )
    figure_report.append("\n".join(lines))

    # Claim 1: large registration volumes in both benchmarks.
    assert db_row["assert_ownedby_calls"] > 100
    assert jbb_row["assert_ownedby_calls"] > 100
    assert db_row["assert_dead_calls"] > 10
    assert jbb_row["assert_instances_calls"] == PAPER["jbb_instances"]

    # Claim 2 (the §3.1.2 churn contrast): db checks a large fraction of its
    # registered ownees every GC; pseudojbb checks a small fraction.
    db_fraction = db_row["ownees_per_gc"] / db_row["assert_ownedby_calls"]
    jbb_fraction = jbb_row["ownees_per_gc"] / jbb_row["assert_ownedby_calls"]
    # Paper's fractions: 15274/15553 ~ 0.98 vs 420/31038 ~ 0.014.  Our
    # default db config is more delete-churny than SPEC's, so the absolute
    # fraction is lower, but the contrast (db holds entries live across
    # GCs, pseudojbb churns orders out quickly) must hold by a wide margin.
    assert db_fraction > 3 * jbb_fraction
    assert db_fraction > 0.1
    assert jbb_fraction < 0.5
