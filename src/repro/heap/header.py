"""Object-header status word.

Each heap object carries a single status word whose low bits are used by the
collector and — crucially for this paper — whose *spare* bits are stolen by
the GC-assertion machinery:

* ``MARK`` — the tracing mark bit.  Mark-state *parity* flips each full-heap
  collection so the sweep phase never has to clear mark bits.
* ``DEAD`` — set by ``assert-dead(p)``; if the collector encounters the
  object while tracing, the assertion is violated (§2.3.1 of the paper).
* ``UNSHARED`` — set by ``assert-unshared(p)``; checked when the collector
  encounters an object whose mark bit is *already* set, i.e. on the second
  incoming reference (§2.5.1).
* ``OWNED`` — set during the ownership phase when an ownee is reached from
  its asserted owner (§2.5.2); objects carrying an ownership assertion that
  reach the normal root scan without this bit are violations.
* ``OWNEE`` / ``OWNER`` — fast-path bits telling the tracer that this object
  participates in an ``assert-ownedby`` pair, so the common case (object has
  no ownership assertion) costs a single bit test.
* ``FREED`` — poison bit set by the sweep phase.  Real collectors recycle
  the memory silently; the simulator uses the bit to turn use-after-free
  into an immediate :class:`~repro.errors.UseAfterFreeError`.
* ``HASHED`` — the object's identity hash has been taken (models Jikes
  RVM's address-based hashing status, needed by the copying collector).

The remaining bits of the status word hold the identity hash code.
"""

from __future__ import annotations

MARK_BIT = 0x01
DEAD_BIT = 0x02
UNSHARED_BIT = 0x04
OWNED_BIT = 0x08
OWNEE_BIT = 0x10
OWNER_BIT = 0x20
FREED_BIT = 0x40
HASHED_BIT = 0x80

#: All bits reserved for flags; higher bits store the identity hash.
FLAG_MASK = 0xFF
HASH_SHIFT = 8

#: Bits that survive a collection cycle (everything except the mark bit,
#: which is interpreted relative to the global mark parity, and OWNED, which
#: is recomputed by each ownership phase).
STICKY_MASK = DEAD_BIT | UNSHARED_BIT | OWNEE_BIT | OWNER_BIT | HASHED_BIT


def new_status(hash_code: int = 0) -> int:
    """Build a fresh status word for a newly allocated object."""
    return (hash_code << HASH_SHIFT) & ~FLAG_MASK


def test(status: int, bit: int) -> bool:
    """Return True if ``bit`` is set in ``status``."""
    return (status & bit) != 0


def set_bit(status: int, bit: int) -> int:
    """Return ``status`` with ``bit`` set."""
    return status | bit


def clear_bit(status: int, bit: int) -> int:
    """Return ``status`` with ``bit`` cleared."""
    return status & ~bit


def hash_of(status: int) -> int:
    """Extract the identity hash stored in the status word."""
    return status >> HASH_SHIFT


def describe(status: int) -> str:
    """Render the flag bits of a status word for debugging output."""
    names = [
        (MARK_BIT, "MARK"),
        (DEAD_BIT, "DEAD"),
        (UNSHARED_BIT, "UNSHARED"),
        (OWNED_BIT, "OWNED"),
        (OWNEE_BIT, "OWNEE"),
        (OWNER_BIT, "OWNER"),
        (FREED_BIT, "FREED"),
        (HASHED_BIT, "HASHED"),
    ]
    flags = [name for bit, name in names if status & bit]
    return "|".join(flags) if flags else "-"
