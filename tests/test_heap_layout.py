"""Unit tests for heap layout constants and helpers."""

import pytest

from repro.heap import layout


class TestAlignment:
    def test_align_up_zero(self):
        assert layout.align_up(0) == 0

    def test_align_up_already_aligned(self):
        assert layout.align_up(16) == 16

    def test_align_up_rounds(self):
        assert layout.align_up(1) == layout.WORD_BYTES
        assert layout.align_up(9) == 16

    def test_align_up_idempotent(self):
        for n in range(0, 100):
            a = layout.align_up(n)
            assert layout.align_up(a) == a

    def test_is_aligned(self):
        assert layout.is_aligned(0)
        assert layout.is_aligned(layout.WORD_BYTES)
        assert not layout.is_aligned(1)
        assert not layout.is_aligned(layout.WORD_BYTES + 3)

    def test_word_shift_consistent(self):
        assert 1 << layout.WORD_SHIFT == layout.WORD_BYTES


class TestAddressTagging:
    """The low address bit the worklist steals must be free on aligned addrs."""

    def test_aligned_addresses_are_untagged(self):
        for addr in (layout.HEAP_BASE_ADDRESS, 0x2000, 0x10 * 7):
            assert addr & layout.ADDRESS_TAG_BIT == 0

    def test_tagging_roundtrip(self):
        addr = layout.HEAP_BASE_ADDRESS
        tagged = addr | layout.ADDRESS_TAG_BIT
        assert tagged != addr
        assert tagged & ~layout.ADDRESS_TAG_BIT == addr

    def test_null_is_zero(self):
        assert layout.NULL == 0

    def test_heap_base_above_null(self):
        assert layout.HEAP_BASE_ADDRESS > 0
        assert layout.is_aligned(layout.HEAP_BASE_ADDRESS)


class TestObjectSizes:
    def test_header_is_two_words(self):
        assert layout.HEADER_BYTES == 2 * layout.WORD_BYTES

    def test_scalar_size_is_word(self):
        assert layout.scalar_size("int") == layout.WORD_BYTES
