"""Exception hierarchy for the GC-assertions runtime.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch the whole family with one handler.  The hierarchy mirrors
the layers of the system: heap-level faults, runtime (VM) faults, language
(MiniJ) faults, and assertion-policy faults such as
:class:`AssertionViolationHalt`, which is raised by the ``HALT`` reaction
policy when the collector detects a violated GC assertion.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class HeapError(ReproError):
    """Base class for heap-level faults (allocation, addressing, layout)."""


class OutOfMemoryError(HeapError):
    """Raised when an allocation cannot be satisfied even after a full GC."""


class InvalidAddressError(HeapError):
    """Raised when an address does not name a live, allocated object."""


class UseAfterFreeError(HeapError):
    """Raised when a handle or field dereferences a reclaimed object.

    In a real VM this would be silent memory corruption; the simulator
    poisons freed objects so the bug surfaces immediately.
    """


class LayoutError(HeapError):
    """Raised for malformed class/field layouts (duplicate fields, bad kinds)."""


class RuntimeFault(ReproError):
    """Base class for VM-level faults raised by mutator operations."""


class NullReferenceError(RuntimeFault):
    """Raised when a null reference is dereferenced (field read/write/call)."""


class TypeFault(RuntimeFault):
    """Raised when a field/array access does not match the declared kind."""


class RegionError(RuntimeFault):
    """Raised on misuse of start-region / assert-alldead bracketing."""


class AssertionUsageError(ReproError):
    """Raised when a GC assertion is registered incorrectly.

    Example: asserting ownership for an object already owned by a different
    owner, or passing a negative instance limit.
    """


class AssertionViolationHalt(ReproError):
    """Raised by the ``HALT`` reaction policy when a GC assertion fails.

    Carries the :class:`~repro.core.reporting.Violation` that triggered it.
    """

    def __init__(self, violation: object):
        self.violation = violation
        super().__init__(str(violation))


class MiniJError(ReproError):
    """Base class for MiniJ language errors."""


class MiniJSyntaxError(MiniJError):
    """Raised by the lexer/parser on malformed source text."""

    def __init__(self, message: str, line: int, column: int):
        self.line = line
        self.column = column
        super().__init__(f"{message} (line {line}, column {column})")


class MiniJCompileError(MiniJError):
    """Raised by the bytecode compiler on semantic errors."""


class MiniJRuntimeError(MiniJError):
    """Raised by the bytecode interpreter on dynamic errors."""
