"""Multi-tenant assertion service.

A long-running asyncio server that hosts many concurrent *tenant
sessions*, each an isolated :class:`~repro.runtime.vm.VirtualMachine`
with its own heap, assertion engine, and telemetry — the serving-side
answer to "GC assertions as a service".  The pieces:

* :mod:`repro.service.wire` — the length-prefixed JSON wire protocol
  (``repro-wire/1``): session open/close, program submission, assertion
  registration, and streamed violation / GC-event frames.
* :mod:`repro.service.admission` — admission control over an aggregate
  heap budget: sessions are admitted, queued, or rejected with
  Retry-After semantics, never crashed.
* :mod:`repro.service.session` — the tenant session lifecycle
  (admitted → running → draining → evicted), per-session bounded
  outbound queues with slow-consumer drop accounting, and the
  fault-injection hooks (``session-kill`` / ``conn-drop``).
* :mod:`repro.service.metrics` — per-tenant telemetry aggregation into
  a shared :class:`~repro.monitor.timeseries.MonitorHub`, plus
  service-level SLOs (admission latency, violation-delivery lag)
  tracked by the burn-rate machinery.
* :mod:`repro.service.server` — the asyncio session server and its
  ``/metrics`` ``/health`` HTTP sidecar.
* :mod:`repro.service.loadgen` — the open-loop Poisson load generator
  behind ``python -m repro loadgen``.
"""

from repro.service.admission import AdmissionController, AdmissionDecision
from repro.service.client import ServiceClient
from repro.service.loadgen import LoadgenConfig, run_loadgen
from repro.service.metrics import ServiceMetrics
from repro.service.server import AssertionService, ServiceConfig
from repro.service.session import FrameQueue, TenantSession, resolve_workload
from repro.service.wire import (
    MAX_FRAME_BYTES,
    WIRE_SCHEMA,
    FrameDecoder,
    SequenceTracker,
    encode_frame,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AssertionService",
    "FrameDecoder",
    "FrameQueue",
    "LoadgenConfig",
    "MAX_FRAME_BYTES",
    "SequenceTracker",
    "ServiceClient",
    "ServiceConfig",
    "ServiceMetrics",
    "TenantSession",
    "WIRE_SCHEMA",
    "encode_frame",
    "resolve_workload",
    "run_loadgen",
]
