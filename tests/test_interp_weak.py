"""MiniJ `weak` field modifier semantics."""

import pytest

from repro.errors import MiniJCompileError
from repro.heap.object_model import FieldKind
from repro.interp.compiler import compile_program
from repro.interp.interpreter import run_source
from repro.interp.parser import parse
from repro.runtime.vm import VirtualMachine


def output_of(source, collector="marksweep"):
    vm = VirtualMachine(heap_bytes=4 << 20, collector=collector)
    return run_source(source, vm).output


class TestWeakFieldDeclaration:
    def test_weak_field_gets_weak_kind(self):
        vm = VirtualMachine(heap_bytes=1 << 20)
        compile_program(
            parse("class Cache { var entry: weak Cache; } def main(): void { }"), vm
        )
        cls = vm.classes.get("Cache")
        assert cls.field("entry").kind is FieldKind.WEAK
        assert cls.weak_slots == (0,)
        assert cls.ref_slots == ()

    def test_weak_scalar_rejected(self):
        vm = VirtualMachine(heap_bytes=1 << 20)
        with pytest.raises(MiniJCompileError):
            compile_program(
                parse("class C { var n: weak int; } def main(): void { }"), vm
            )

    def test_weak_class_named_weak_still_usable(self):
        """A class literally named `weak` is unambiguous: the modifier only
        applies when another type name follows."""
        out = output_of(
            """
            class weak { var v: int; }
            class C { var w: weak; }
            def main(): void {
              var c: C = new C();
              c.w = new weak();
              c.w.v = 3;
              print(c.w.v);
            }
            """
        )
        assert out == ["3"]


class TestWeakFieldSemantics:
    PROGRAM = """
        class Cache { var hot: weak Item; }
        class Item { var v: int; }
        def main(): void {
          var cache: Cache = new Cache();
          var item: Item = new Item();
          item.v = 42;
          cache.hot = item;
          gc();
          print(cache.hot != null);   // true: the local roots it
          print(cache.hot.v);
          item = null;                // drop the only strong reference
          gc();
          print(cache.hot == null);   // true: weak field was cleared
        }
    """

    def test_weak_field_cleared_when_target_dies(self):
        assert output_of(self.PROGRAM) == ["true", "42", "true"]

    @pytest.mark.parametrize("collector", ["semispace", "generational"])
    def test_same_on_moving_collectors(self, collector):
        assert output_of(self.PROGRAM, collector) == ["true", "42", "true"]

    def test_weak_store_does_not_retain(self):
        out = output_of(
            """
            class Cache { var hot: weak Item; }
            class Item { var v: int; }
            def main(): void {
              var cache: Cache = new Cache();
              cache.hot = new Item();   // no strong reference anywhere
              gc();
              print(heapLive());        // only the Cache survives
            }
            """
        )
        assert out == ["1"]

    def test_weak_array_field(self):
        out = output_of(
            """
            class Cache { var slots: weak Item[]; }
            class Item { var v: int; }
            def main(): void {
              var cache: Cache = new Cache();
              var arr: Item[] = new Item[2];
              cache.slots = arr;        // weak ref to the ARRAY itself
              arr = null;               // drop the strong root
              gc();
              print(cache.slots == null);  // arr only weakly held: cleared
            }
            """
        )
        assert out == ["true"]
