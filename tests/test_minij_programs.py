"""The examples/programs MiniJ corpus, run end to end."""

import pathlib

import pytest

from repro.interp.interpreter import Interpreter
from repro.runtime.vm import VirtualMachine

PROGRAMS = pathlib.Path(__file__).resolve().parent.parent / "examples" / "programs"


def run_program(name, heap_bytes=4 << 20, entry="main"):
    source = (PROGRAMS / name).read_text()
    vm = VirtualMachine(heap_bytes=heap_bytes)
    interp = Interpreter(vm)
    interp.load(source)
    interp.run(entry)
    return vm, interp


class TestCorpus:
    def test_programs_exist(self):
        names = {p.name for p in PROGRAMS.glob("*.minij")}
        assert {"linked_list.minij", "object_pool.minij", "binary_tree.minij"} <= names

    def test_linked_list(self):
        vm, interp = run_program("linked_list.minij")
        assert interp.output == ["sum: 55", "popped: 10", "violations: 0", "size: 9"]
        assert len(vm.engine.log) == 0

    def test_object_pool_capacity_bug(self):
        vm, interp = run_program("object_pool.minij")
        assert interp.output[-1].startswith("violations: ")
        assert int(interp.output[-1].split(": ")[1]) >= 1
        violation = vm.engine.log.violations[0]
        assert violation.details["type"] == "Buffer"
        assert violation.details["count"] > 4

    def test_binary_tree_rotation_bug(self):
        vm, interp = run_program("binary_tree.minij")
        assert "nodes: 8" in interp.output
        assert "violations before bug: 0" in interp.output
        assert "violations after bug: 1" in interp.output
        violation = vm.engine.log.violations[0]
        assert violation.kind.value == "assert-unshared"
        assert violation.type_name == "TreeNode"

    def test_order_processing_buggy_variant(self):
        """The SPEC JBB lastOrder leak, written entirely in MiniJ."""
        vm, interp = run_program("order_processing.minij")
        assert interp.output == ["buggy destroy(): violations = 16"]
        violation = vm.engine.log.violations[0]
        names = violation.path.type_names()
        assert names[-2:] == ["Customer", "Order"]

    def test_order_processing_fixed_variant(self):
        vm, interp = run_program("order_processing.minij", entry="mainFixed")
        assert interp.output == ["fixed destroy(): violations = 0"]
        assert len(vm.engine.log) == 0

    @pytest.mark.parametrize(
        "name", ["linked_list.minij", "object_pool.minij", "binary_tree.minij"]
    )
    def test_corpus_runs_under_memory_pressure(self, name):
        """The same programs complete correctly in a tiny heap."""
        vm, interp = run_program(name, heap_bytes=32 << 10)
        assert interp.output  # produced output without crashing

    @pytest.mark.parametrize(
        "name", ["linked_list.minij", "binary_tree.minij"]
    )
    def test_corpus_runs_on_moving_collectors(self, name):
        source = (PROGRAMS / name).read_text()
        for collector in ("semispace", "generational"):
            vm = VirtualMachine(heap_bytes=1 << 20, collector=collector)
            interp = Interpreter(vm)
            interp.load(source)
            interp.run("main")
            assert interp.output
