"""Zone-sharded parallel marking: identity, merges, zones, and spans.

The contract under test everywhere here: sharding the heap into zones and
draining them on a worker pool changes *who* traces each object, never
*what* is traced, freed, counted, or reported.  Sequential runs (the
unsharded heap, ``gc_workers`` unset) are the ground truth; every parallel
configuration must be counter-identical and violation-identical to it.
"""

import random

import pytest

from repro.errors import HeapError
from repro.gc.stats import GcStats
from repro.heap.layout import HEAP_BASE_ADDRESS
from repro.heap.object_model import FieldKind
from repro.heap.space import CHUNK_SHIFT
from repro.heap.zones import (
    DEFAULT_ZONE_COUNT,
    MAX_ZONES,
    ZONE_STRIDE,
    ZoneMap,
    ZonedFreeListSpace,
)
from repro.runtime.vm import VirtualMachine
from repro.telemetry.census import merge_censuses, take_census
from tests.conftest import make_node_class

HEAP = 256 << 10


# -- zone map ---------------------------------------------------------------------------


class TestZoneMap:
    def test_strided_maps_each_zone_base(self):
        zone_map = ZoneMap.strided(8, HEAP_BASE_ADDRESS)
        for zone in range(8):
            address = HEAP_BASE_ADDRESS + zone * ZONE_STRIDE + 0x40
            assert zone_map.zone_of(address) == zone

    def test_strided_out_of_range_falls_back_to_granule_hash(self):
        zone_map = ZoneMap.strided(4, HEAP_BASE_ADDRESS)
        beyond = HEAP_BASE_ADDRESS + 4 * ZONE_STRIDE + 0x123
        assert 0 <= zone_map.zone_of(beyond) < 4
        assert 0 <= zone_map.zone_of(0x10) < 4  # below base too

    def test_hashed_keeps_granule_neighbours_together(self):
        zone_map = ZoneMap.hashed(8)
        base = 0x40000
        assert zone_map.zone_of(base) == zone_map.zone_of(base + 0x100)

    def test_zone_count_bounds(self):
        with pytest.raises(HeapError):
            ZoneMap.hashed(0)
        with pytest.raises(HeapError):
            ZoneMap.hashed(MAX_ZONES + 1)


# -- zoned space ------------------------------------------------------------------------


class TestZonedFreeListSpace:
    def test_allocations_rotate_across_zones(self):
        space = ZonedFreeListSpace("t", 1 << 20, zones=4)
        zones = {space.zone_of(space.allocate(16)) for _ in range(8)}
        assert zones == {0, 1, 2, 3}

    def test_reserve_run_serves_one_zone_per_refill(self):
        space = ZonedFreeListSpace("t", 1 << 20, zones=4)
        run = space.reserve_run(16, 16)
        assert len(run) == 16
        assert {space.zone_of(address) for address in run} == {space.zone_of(run[0])}
        # The next refill rotates to a different zone.
        second = space.reserve_run(16, 16)
        assert space.zone_of(second[0]) != space.zone_of(run[0])

    def test_shared_budget_binds_before_any_shard(self):
        space = ZonedFreeListSpace("t", 64, zones=4)
        assert space.allocate(32) is not None
        assert space.allocate(32) is not None
        assert space.allocate(16) is None  # global budget, not shard space
        assert space.bytes_free == 0

    def test_chunk_routing_covers_each_zones_first_chunk(self):
        # A zone's first chunk *starts* below the shard base (the base
        # carries the heap-base offset, the chunk grid does not); routing
        # by start address would hand it to the previous zone and its
        # cells would never be swept.
        space = ZonedFreeListSpace("t", 1 << 20, zones=4)
        addresses = [space.allocate(16) for _ in range(8)]
        for chunk_id in space.chunk_ids():
            cells = space.chunk_cells(chunk_id)
            assert cells, f"chunk {chunk_id:#x} routed to a shard that lacks it"
            for address, _cell in cells:
                assert address >> CHUNK_SHIFT == chunk_id
        listed = {a for cid in space.chunk_ids() for a, _ in space.chunk_cells(cid)}
        assert set(addresses) <= listed

    def test_free_returns_cell_to_owning_shard(self):
        from repro.heap.freelist import size_class_for

        space = ZonedFreeListSpace("t", 1 << 20, zones=4)
        address = space.allocate(24)
        shard = space.shard_for(address)
        space.free(address)
        assert space.bytes_in_use == 0
        assert shard.free_list.pop(size_class_for(24)) == address

    def test_deny_next_refuses_at_the_facade(self):
        space = ZonedFreeListSpace("t", 1 << 20, zones=2)
        space.deny_next(1)
        assert space.allocate(16) is None
        assert space.allocate(16) is not None


# -- stats / census merges --------------------------------------------------------------


class TestMerges:
    def test_gcstats_merge_sums_counters_and_maxes_timers(self):
        pause = GcStats()
        pause.objects_traced = 10
        pause.edges_traced = 12
        pause.gc_seconds = 0.5
        partial = GcStats()
        partial.objects_traced = 7
        partial.edges_traced = 9
        partial.gc_seconds = 0.0  # worker partials carry no pause time
        merged = pause.merge(partial)
        assert merged.objects_traced == 17
        assert merged.edges_traced == 21
        # One pause, not two: the timer is the max of the observers.
        assert merged.gc_seconds == 0.5
        # Inputs are untouched.
        assert pause.objects_traced == 10 and partial.objects_traced == 7

    def test_merge_censuses_folds_rows(self):
        merged = merge_censuses(
            [
                {"Node": (3, 96), "Leaf": (1, 16)},
                {"Node": [2, 64]},
                {},
            ]
        )
        assert merged == {"Node": (5, 160), "Leaf": (1, 16)}

    def test_parallel_census_matches_post_gc_take_census(self):
        # The merged per-zone census must equal a census walked over the
        # whole heap at pause end — the lost-update race the zone-local
        # accumulation discipline exists to prevent would break this.
        vm = _grown_vm(gc_workers=4)
        vm.gc("census check")
        report = vm.collector.last_parallel_mark
        assert report is not None
        ground_truth = take_census(
            vm.heap, skip=vm.collector.pending_garbage_predicate()
        )
        assert report.census == ground_truth


# -- sequential/parallel identity -------------------------------------------------------


def _grown_vm(**kwargs) -> VirtualMachine:
    """A VM with a deterministic multi-GC history: churn + survivors."""
    vm = VirtualMachine(heap_bytes=HEAP, **kwargs)
    cls = make_node_class(vm)
    rng = random.Random(7)
    survivors = []
    for round_no in range(6):
        with vm.scope():
            prev = None
            for i in range(200):
                node = vm.new(cls, value=i)
                if prev is not None:
                    prev["next"] = node
                prev = node
                if rng.random() < 0.05:
                    survivors.append(node.address)
            arr = vm.new_array(cls, 16)
            for idx, address in enumerate(survivors[-16:]):
                arr[idx] = vm.handle(address)
            vm.statics.set_ref(f"arr-{round_no}", arr.address)
        vm.gc(f"round {round_no}")
    return vm


COUNTERS = (
    "objects_traced",
    "edges_traced",
    "objects_freed",
    "bytes_freed",
    "header_bit_checks",
    "instance_count_increments",
    "assertion_checks",
    "violations_detected",
)


def _counter_signature(vm) -> dict:
    return {field: getattr(vm.stats, field) for field in COUNTERS}


class TestCounterIdentity:
    def test_workers_one_matches_sequential(self):
        sequential = _counter_signature(_grown_vm())
        parallel = _counter_signature(_grown_vm(gc_workers=1))
        assert parallel == sequential

    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_worker_counts_match_sequential(self, workers):
        sequential = _counter_signature(_grown_vm())
        parallel = _counter_signature(_grown_vm(gc_workers=workers))
        assert parallel == sequential

    def test_report_totals_match_stats(self):
        vm = _grown_vm(gc_workers=4)
        before_edges = vm.stats.edges_traced
        vm.gc("report check")
        report = vm.collector.last_parallel_mark
        # Per-zone work totals and per-worker attribution are two views of
        # the same drains; the pause's edge counter is their ground truth.
        drained = sum(report.zone_edges)
        assert drained == sum(report.edges_traced)
        assert drained == vm.stats.edges_traced - before_edges
        assert sum(report.zone_objects) == sum(report.objects_traced)
        # The deterministic scaling bound: one bin is always 1.0, and with
        # work spread over several zones more bins must help.
        assert report.zone_balance_speedup(1) == 1.0
        if sum(1 for e in report.zone_edges if e) > 1:
            assert report.zone_balance_speedup(8) > 1.0


# -- violation parity -------------------------------------------------------------------


def _violation_workload(vm) -> None:
    """One violation of each kind, deterministically."""
    cls = vm.define_class(
        "V", [("a", FieldKind.REF), ("b", FieldKind.REF), ("v", FieldKind.INT)]
    )
    with vm.scope():
        # assert_dead on an object that stays reachable from a static.
        victim = vm.new(cls, v=1)
        vm.statics.set_ref("keeper", victim.address)
        vm.assertions.assert_dead(victim, site="t:dead")
        # assert_unshared with two incoming references.
        shared = vm.new(cls, v=2)
        left, right = vm.new(cls, v=3), vm.new(cls, v=4)
        left["a"] = shared
        right["a"] = shared
        vm.statics.set_ref("left", left.address)
        vm.statics.set_ref("right", right.address)
        vm.assertions.assert_unshared(shared, site="t:unshared")
        # assert_instances over the limit.
        vm.assertions.assert_instances(cls, 2)
    vm.gc("violation check")


def _violation_signature(vm) -> set:
    return {
        (v.kind.value, v.address if v.address is not None else -1, v.site or "")
        for v in vm.assertions.violations
    }


class TestViolationParity:
    @pytest.mark.parametrize("collector", ["marksweep", "generational"])
    @pytest.mark.parametrize("sweep_mode", ["eager", "lazy"])
    def test_same_violations_at_every_worker_count(self, collector, sweep_mode):
        signatures = []
        for workers in (None, 1, 2, 4, 8):
            vm = VirtualMachine(
                heap_bytes=HEAP,
                collector=collector,
                sweep_mode=sweep_mode,
                gc_workers=workers,
            )
            _violation_workload(vm)
            signature = _violation_signature(vm)
            assert signature, "scenario must actually violate"
            signatures.append(signature)
        assert all(s == signatures[0] for s in signatures[1:])


# -- spans ------------------------------------------------------------------------------


class TestWorkerSpans:
    def test_parallel_mark_emits_worker_spans(self):
        from repro.tracing.export import chrome_trace_events
        from repro.tracing.report import aggregate_spans
        from repro.tracing.spans import WORKER_TRACK_BASE

        vm = VirtualMachine(heap_bytes=HEAP, gc_workers=4, tracing=True)
        cls = make_node_class(vm)
        with vm.scope():
            prev = None
            for i in range(300):
                node = vm.new(cls, value=i)
                if prev is not None:
                    prev["next"] = node
                else:
                    vm.statics.set_ref("head", node.address)
                prev = node
        vm.gc("span check")
        worker_events = [
            event for event in vm.span_tracer.events if event[0] == "X"
        ]
        assert worker_events, "parallel mark produced no worker spans"
        names = {event[1] for event in worker_events}
        assert any(name.startswith("mark_worker_") for name in names)
        for event in worker_events:
            assert event[6] >= WORKER_TRACK_BASE
        # Export and aggregation both understand complete events.
        exported = chrome_trace_events(vm.span_tracer)
        tids = {row["tid"] for row in exported if row.get("ph") == "X"}
        assert tids and min(tids) >= WORKER_TRACK_BASE
        table = aggregate_spans(vm.span_tracer.events)
        assert any(name.startswith("mark_worker_") for name in table)


# -- fault pinning ----------------------------------------------------------------------


class TestPinZone:
    def test_pinned_victims_come_from_the_pinned_zone(self):
        from repro.faults.injector import FaultInjector

        vm = _grown_vm(gc_workers=4)
        injector = FaultInjector(vm, pin_zone=1)
        pool = injector._reachable()
        zone_of = vm.collector.zone_map.zone_of
        assert pool
        assert all(zone_of(address) == 1 for address in pool)

    def test_corrupt_freelist_routes_through_the_shard(self):
        from repro.faults.injector import FaultInjector

        vm = _grown_vm(gc_workers=4, hardened=True)
        injector = FaultInjector(vm, pin_zone=1)
        detail = injector.apply_now("corrupt-freelist")
        assert "/z1" in detail
