"""Weak references: non-retaining slots cleared/forwarded by collectors."""

import pytest

from repro.gc.verify import verify_heap
from repro.heap.layout import NULL
from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine
from tests.conftest import make_node_class


@pytest.fixture(params=["marksweep", "semispace", "generational"])
def wvm(request):
    return VirtualMachine(heap_bytes=1 << 20, collector=request.param)


@pytest.fixture
def classes(wvm):
    holder = wvm.define_class(
        "WeakHolder", [("weak", FieldKind.WEAK), ("strong", FieldKind.REF)]
    )
    node = make_node_class(wvm)
    return holder, node


class TestWeakSemantics:
    def test_weak_ref_does_not_keep_target_alive(self, wvm, classes):
        holder_cls, node_cls = classes
        with wvm.scope():
            holder = wvm.new(holder_cls)
            wvm.statics.set_ref("h", holder.address)
            target = wvm.new(node_cls, value=7)
            holder["weak"] = target
        wvm.gc()
        assert not target.is_live
        assert holder["weak"] is None
        assert wvm.stats.weak_refs_cleared >= 1

    def test_weak_ref_readable_while_target_lives(self, wvm, classes):
        holder_cls, node_cls = classes
        with wvm.scope():
            holder = wvm.new(holder_cls)
            wvm.statics.set_ref("h", holder.address)
            target = wvm.new(node_cls, value=7)
            holder["weak"] = target
            wvm.statics.set_ref("t", target.address)
        wvm.gc()
        assert holder["weak"]["value"] == 7

    def test_strong_slot_still_retains(self, wvm, classes):
        holder_cls, node_cls = classes
        with wvm.scope():
            holder = wvm.new(holder_cls)
            wvm.statics.set_ref("h", holder.address)
            target = wvm.new(node_cls, value=3)
            holder["strong"] = target
            holder["weak"] = target
        wvm.gc()
        assert target.is_live
        assert holder["weak"] == target

    def test_weak_forwarded_when_target_moves(self, classes, wvm):
        if not wvm.collector.moving:
            pytest.skip("non-moving collector")
        holder_cls, node_cls = classes
        with wvm.scope():
            holder = wvm.new(holder_cls)
            wvm.statics.set_ref("h", holder.address)
            target = wvm.new(node_cls, value=11)
            wvm.statics.set_ref("t", target.address)
            holder["weak"] = target
        before = target.obj.address
        wvm.gc()
        assert target.obj.address != before  # it moved
        assert holder.ref_address("weak") == target.obj.address
        assert holder["weak"]["value"] == 11

    def test_weak_cleared_then_reusable(self, wvm, classes):
        holder_cls, node_cls = classes
        with wvm.scope():
            holder = wvm.new(holder_cls)
            wvm.statics.set_ref("h", holder.address)
            holder["weak"] = wvm.new(node_cls)
        wvm.gc()
        assert holder["weak"] is None
        with wvm.scope():
            replacement = wvm.new(node_cls, value=5)
            wvm.statics.set_ref("r", replacement.address)
            holder["weak"] = replacement
        wvm.gc()
        assert holder["weak"]["value"] == 5

    def test_heap_verifies_with_weak_slots(self, wvm, classes):
        holder_cls, node_cls = classes
        with wvm.scope():
            holder = wvm.new(holder_cls)
            wvm.statics.set_ref("h", holder.address)
            holder["weak"] = wvm.new(node_cls)
        wvm.gc()
        assert verify_heap(wvm) == []


class TestWeakArrays:
    def test_weak_array_elements_cleared_individually(self, wvm, classes):
        _holder_cls, node_cls = classes
        with wvm.scope():
            arr = wvm.new_array(FieldKind.WEAK, 3)
            wvm.statics.set_ref("arr", arr.address)
            kept = wvm.new(node_cls, value=1)
            wvm.statics.set_ref("kept", kept.address)
            doomed = wvm.new(node_cls, value=2)
            arr[0] = kept
            arr[1] = doomed
        wvm.gc()
        assert arr[0] == kept
        assert arr[1] is None
        assert arr[2] is None

    def test_weak_array_does_not_trace_elements(self, wvm, classes):
        _holder_cls, node_cls = classes
        with wvm.scope():
            arr = wvm.new_array(FieldKind.WEAK, 2)
            wvm.statics.set_ref("arr", arr.address)
            arr[0] = wvm.new(node_cls)
        before = wvm.heap.stats.objects_live
        wvm.gc()
        # Only the array itself survives.
        assert wvm.heap.stats.objects_live == 1


class TestWeakCache:
    def test_weak_value_cache_pattern(self, wvm, classes):
        """The canonical use: a cache that never delays reclamation."""
        _holder_cls, node_cls = classes
        with wvm.scope():
            cache = wvm.new_array(FieldKind.WEAK, 8)
            wvm.statics.set_ref("cache", cache.address)
            registry = wvm.new_array(node_cls, 8)
            wvm.statics.set_ref("registry", registry.address)
            for i in range(8):
                item = wvm.new(node_cls, value=i)
                registry[i] = item
                cache[i] = item
        # Evict half the registry; the cache lets those die.
        for i in range(0, 8, 2):
            registry[i] = None
        wvm.gc()
        for i in range(8):
            if i % 2 == 0:
                assert cache[i] is None
            else:
                assert cache[i]["value"] == i

    def test_generational_minor_gc_clears_nursery_weaks(self):
        vm = VirtualMachine(heap_bytes=1 << 20, collector="generational")
        node_cls = make_node_class(vm)
        with vm.scope():
            cache = vm.new_array(FieldKind.WEAK, 1)
            vm.statics.set_ref("cache", cache.address)
            cache[0] = vm.new(node_cls)  # dies young
        vm.minor_gc()
        assert cache[0] is None

    def test_generational_minor_gc_forwards_promoted_weaks(self):
        vm = VirtualMachine(heap_bytes=1 << 20, collector="generational")
        node_cls = make_node_class(vm)
        with vm.scope():
            cache = vm.new_array(FieldKind.WEAK, 1)
            vm.statics.set_ref("cache", cache.address)
            target = vm.new(node_cls, value=9)
            vm.statics.set_ref("t", target.address)
            cache[0] = target
        vm.minor_gc()  # target promoted to mature
        assert vm.collector.mature.contains(target.obj.address)
        assert cache[0]["value"] == 9
