"""Class descriptors, field layout, and heap objects.

This module plays the role of Jikes RVM's ``RVMClass``/``RVMArray`` and
object model.  A :class:`ClassDescriptor` records the field layout of a
class (including inherited fields), the byte size of its instances, and —
following §2.4.1 of the paper — two extra words used by the
``assert-instances`` machinery: the *instance limit* and the *instance
count* for the class.

A :class:`HeapObject` is one allocated object: a status word (see
:mod:`repro.heap.header`), a class descriptor (the "type word" of the
two-word header), and a slot array.  Reference slots hold integer heap
addresses (``0`` is null); scalar slots hold Python values.  Arrays are heap
objects whose descriptor has ``is_array`` set; their slot array holds the
elements and their length is explicit in the object size.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional, Sequence

from repro.errors import LayoutError
from repro.heap import header as hdr
from repro.heap.layout import (
    ARRAY_LENGTH_BYTES,
    HEADER_BYTES,
    NULL,
    WORD_BYTES,
    align_up,
)


class FieldKind(enum.Enum):
    """The kind of a field or array element.

    ``REF`` slots hold heap addresses and are traced by the collector.
    ``WEAK`` slots also hold heap addresses but are *not* traced: they do
    not keep their target alive; the collector clears them when the target
    is reclaimed and forwards them when the target moves.  The scalar kinds
    hold immediate values and are skipped by tracing.
    """

    REF = "ref"
    WEAK = "weak"
    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    STR = "str"

    @property
    def is_reference(self) -> bool:
        """True for strongly-traced reference slots."""
        return self is FieldKind.REF

    @property
    def is_weak(self) -> bool:
        return self is FieldKind.WEAK

    @property
    def holds_address(self) -> bool:
        """True for any slot that stores a heap address (strong or weak)."""
        return self is FieldKind.REF or self is FieldKind.WEAK

    def default(self):
        """The zero value stored in a freshly allocated slot of this kind."""
        if self is FieldKind.REF or self is FieldKind.WEAK:
            return NULL
        if self is FieldKind.INT:
            return 0
        if self is FieldKind.FLOAT:
            return 0.0
        if self is FieldKind.BOOL:
            return False
        return ""


class FieldDescriptor:
    """One declared field: a name, a kind, and its slot index in instances."""

    __slots__ = ("name", "kind", "slot", "declaring_class")

    def __init__(self, name: str, kind: FieldKind, slot: int, declaring_class: "ClassDescriptor"):
        self.name = name
        self.kind = kind
        self.slot = slot
        self.declaring_class = declaring_class

    @property
    def offset(self) -> int:
        """Byte offset of this field from the object start."""
        return HEADER_BYTES + self.slot * WORD_BYTES

    def __repr__(self) -> str:
        return f"<field {self.declaring_class.name}.{self.name}: {self.kind.value} @slot {self.slot}>"


class ClassDescriptor:
    """Layout and metadata for one class (or array type).

    Attributes:
        class_id: dense integer id assigned by the class registry.
        name: fully qualified class name (``"spec.jbb.Order"``).
        superclass: parent descriptor, or None for roots of the hierarchy.
        fields: fields declared by *this* class, in declaration order.
        all_fields: inherited + declared fields, slot order.
        ref_slots: slot indices of all reference fields (the trace map).
        instance_size: bytes occupied by one instance (header included).
        is_array / element_kind: array typing.
        instance_limit / instance_count: the two words §2.4.1 adds to
            ``RVMClass`` for ``assert-instances``.
    """

    __slots__ = (
        "class_id",
        "name",
        "superclass",
        "fields",
        "all_fields",
        "field_index",
        "ref_slots",
        "weak_slots",
        "instance_size",
        "is_array",
        "element_kind",
        "instance_limit",
        "instance_count",
        "allocation_count",
    )

    def __init__(
        self,
        class_id: int,
        name: str,
        field_specs: Sequence[tuple[str, FieldKind]] = (),
        superclass: Optional["ClassDescriptor"] = None,
        is_array: bool = False,
        element_kind: Optional[FieldKind] = None,
    ):
        if is_array and element_kind is None:
            raise LayoutError(f"array class {name!r} needs an element kind")
        if not is_array and element_kind is not None:
            raise LayoutError(f"non-array class {name!r} must not declare an element kind")

        self.class_id = class_id
        self.name = name
        self.superclass = superclass
        self.is_array = is_array
        self.element_kind = element_kind

        inherited: list[FieldDescriptor] = list(superclass.all_fields) if superclass else []
        taken = {f.name for f in inherited}
        self.fields: list[FieldDescriptor] = []
        for fname, kind in field_specs:
            if fname in taken:
                raise LayoutError(f"class {name!r} redeclares field {fname!r}")
            taken.add(fname)
            self.fields.append(FieldDescriptor(fname, kind, len(inherited) + len(self.fields), self))
        self.all_fields: tuple[FieldDescriptor, ...] = tuple(inherited + self.fields)
        self.field_index = {f.name: f for f in self.all_fields}
        self.ref_slots: tuple[int, ...] = tuple(
            f.slot for f in self.all_fields if f.kind.is_reference
        )
        self.weak_slots: tuple[int, ...] = tuple(
            f.slot for f in self.all_fields if f.kind.is_weak
        )
        if is_array:
            self.instance_size = 0  # computed per-instance from the length
        else:
            self.instance_size = align_up(HEADER_BYTES + len(self.all_fields) * WORD_BYTES)

        # assert-instances metadata (two words per loaded class, §2.4.1).
        self.instance_limit: Optional[int] = None
        self.instance_count: int = 0
        # Cumulative allocations, used by heap statistics and workloads.
        self.allocation_count: int = 0

    def field(self, name: str) -> FieldDescriptor:
        try:
            return self.field_index[name]
        except KeyError:
            raise LayoutError(f"class {self.name!r} has no field {name!r}") from None

    def has_field(self, name: str) -> bool:
        return name in self.field_index

    def array_size(self, length: int) -> int:
        """Byte size of an array instance of this (array) class."""
        return align_up(HEADER_BYTES + ARRAY_LENGTH_BYTES + length * WORD_BYTES)

    def size_of(self, length: int = 0) -> int:
        return self.array_size(length) if self.is_array else self.instance_size

    def is_subclass_of(self, other: "ClassDescriptor") -> bool:
        cls: Optional[ClassDescriptor] = self
        while cls is not None:
            if cls is other:
                return True
            cls = cls.superclass
        return False

    def __repr__(self) -> str:
        tag = "array" if self.is_array else "class"
        return f"<{tag} {self.name} id={self.class_id}>"


class HeapObject:
    """One allocated object in the simulated heap.

    ``slots`` mixes reference slots (integer addresses) and scalar slots
    (Python values), interpreted through ``cls``.  ``address`` is the
    object's current word-aligned heap address; the copying collector
    updates it in place so Python-side handles keep working across moves.
    """

    __slots__ = ("address", "status", "cls", "slots", "alloc_seq", "alloc_site")

    def __init__(self, address: int, cls: ClassDescriptor, length: int = 0):
        self.address = address
        self.status = hdr.new_status()
        self.cls = cls
        #: Monotone install stamp assigned by the heap; bumped again on
        #: relocation.  Lazy sweeping uses it to tell objects that occupied
        #: a cell at mark time from ones installed into the cell afterwards.
        self.alloc_seq = 0
        #: Optional allocation-site tag stamped by the VM (see
        #: :meth:`repro.runtime.vm.VM.alloc_site`); survives relocation.
        self.alloc_site: Optional[str] = None
        if cls.is_array:
            elem_default = cls.element_kind.default()  # type: ignore[union-attr]
            self.slots: list = [elem_default] * length
        else:
            self.slots = [f.kind.default() for f in cls.all_fields]

    # -- header convenience -------------------------------------------------

    def test(self, bit: int) -> bool:
        return (self.status & bit) != 0

    def set(self, bit: int) -> None:
        self.status |= bit

    def clear(self, bit: int) -> None:
        self.status &= ~bit

    @property
    def is_marked(self) -> bool:
        return (self.status & hdr.MARK_BIT) != 0

    @property
    def is_freed(self) -> bool:
        return (self.status & hdr.FREED_BIT) != 0

    # -- layout --------------------------------------------------------------

    @property
    def length(self) -> int:
        """Array length (0 for scalars objects)."""
        return len(self.slots) if self.cls.is_array else 0

    @property
    def size_bytes(self) -> int:
        return self.cls.size_of(len(self.slots) if self.cls.is_array else 0)

    def reference_slots(self) -> Iterable[int]:
        """Yield the *values* of all reference slots (including nulls)."""
        if self.cls.is_array:
            if self.cls.element_kind.is_reference:  # type: ignore[union-attr]
                yield from self.slots
        else:
            slots = self.slots
            for idx in self.cls.ref_slots:
                yield slots[idx]

    def reference_slot_indices(self) -> Iterable[int]:
        """Yield slot indices that hold strong references."""
        if self.cls.is_array:
            if self.cls.element_kind.is_reference:  # type: ignore[union-attr]
                yield from range(len(self.slots))
        else:
            yield from self.cls.ref_slots

    @property
    def has_weak_slots(self) -> bool:
        cls = self.cls
        if cls.is_array:
            return cls.element_kind.is_weak  # type: ignore[union-attr]
        return bool(cls.weak_slots)

    def weak_slot_indices(self) -> Iterable[int]:
        """Yield slot indices that hold weak references."""
        cls = self.cls
        if cls.is_array:
            if cls.element_kind.is_weak:  # type: ignore[union-attr]
                yield from range(len(self.slots))
        else:
            yield from cls.weak_slots

    def type_name(self) -> str:
        return self.cls.name

    def __repr__(self) -> str:
        return (
            f"<obj {self.cls.name}@{self.address:#x} "
            f"[{hdr.describe(self.status)}]>"
        )
