"""Block-structured space tests (the Jikes-style MarkSweep layout)."""

import pytest

from repro.errors import HeapError
from repro.heap.blocks import BLOCK_BYTES, LARGE_CUTOFF, Block, BlockSpace
from repro.heap.object_model import FieldKind
from repro.runtime.vm import VirtualMachine
from repro.gc.marksweep import MarkSweepCollector
from tests.conftest import build_chain, make_node_class


@pytest.fixture
def space():
    return BlockSpace("test", 16 * BLOCK_BYTES)


class TestBlock:
    def test_format_carves_cells(self):
        block = Block(0x1000, 64)
        assert block.n_cells == BLOCK_BYTES // 64
        assert not block.is_full
        assert block.is_empty

    def test_take_and_return_cell(self):
        block = Block(0x1000, 64)
        a = block.take_cell()
        assert a == 0x1000
        assert block.live_cells == 1
        block.return_cell(a)
        assert block.is_empty

    def test_cells_are_distinct_and_in_block(self):
        block = Block(0x1000, 256)
        cells = {block.take_cell() for _ in range(block.n_cells)}
        assert len(cells) == block.n_cells
        assert all(0x1000 <= c < 0x1000 + BLOCK_BYTES for c in cells)
        assert block.is_full

    def test_return_bad_address_rejected(self):
        block = Block(0x1000, 64)
        block.take_cell()
        with pytest.raises(HeapError):
            block.return_cell(0x1000 + 13)  # not cell aligned

    def test_double_free_detected(self):
        block = Block(0x1000, 64)
        a = block.take_cell()
        block.return_cell(a)
        with pytest.raises(HeapError):
            block.return_cell(a)

    def test_reformat_changes_cell_size(self):
        block = Block(0x1000, 64)
        block.take_cell()
        block.format(128)
        assert block.cell_bytes == 128
        assert block.is_empty


class TestBlockSpace:
    def test_small_allocations_share_a_block(self, space):
        a = space.allocate(32)
        b = space.allocate(32)
        assert a // BLOCK_BYTES == b // BLOCK_BYTES
        assert space.bytes_in_use == BLOCK_BYTES  # one block of budget

    def test_different_size_classes_use_different_blocks(self, space):
        a = space.allocate(32)
        b = space.allocate(512)
        assert a // BLOCK_BYTES != b // BLOCK_BYTES
        assert space.bytes_in_use == 2 * BLOCK_BYTES

    def test_free_recycles_cell_within_block(self, space):
        a = space.allocate(64)
        space.free(a)
        assert space.allocate(64) == a

    def test_empty_block_recycles_across_size_classes(self, space):
        a = space.allocate(32)
        space.free(a)  # block empties, returns to the pool
        b = space.allocate(1024)  # different class reuses the same block
        assert b // BLOCK_BYTES == a // BLOCK_BYTES

    def test_full_block_leaves_partial_list_and_returns(self, space):
        cell = 2048  # two cells per block
        a = space.allocate(cell)
        b = space.allocate(cell)
        c = space.allocate(cell)  # forces a second block
        assert c // BLOCK_BYTES != a // BLOCK_BYTES
        space.free(b)
        # The freed cell in the first (previously full) block is reused.
        assert space.allocate(cell) == b

    def test_capacity_is_block_granular(self):
        space = BlockSpace("tiny", 2 * BLOCK_BYTES)
        assert space.allocate(32) is not None   # block 1 (size class 32)
        assert space.allocate(512) is not None  # block 2 (size class 512)
        assert space.allocate(1024) is None     # would need a third block
        assert space.allocate(32) is not None   # block 1 still has cells

    def test_large_objects_get_spans(self, space):
        a = space.allocate(LARGE_CUTOFF + 1)
        assert a is not None
        assert space.contains(a)
        size = space.cell_size(a)
        assert size % BLOCK_BYTES == 0
        freed = space.free(a)
        assert freed == size
        assert not space.contains(a)

    def test_free_of_unallocated_rejected(self, space):
        with pytest.raises(HeapError):
            space.free(space._base + 8)

    def test_contains(self, space):
        a = space.allocate(64)
        assert space.contains(a)
        assert not space.contains(a + 8)  # interior, not a live cell start
        space.free(a)
        assert not space.contains(a)

    def test_fragmentation_report(self, space):
        kept = [space.allocate(32) for _ in range(4)]
        frag = space.fragmentation()
        assert frag["bytes_in_use"] == BLOCK_BYTES
        assert frag["live_cell_bytes"] == 4 * 32
        assert 0 < frag["utilization"] < 1.0

    def test_addresses_word_aligned(self, space):
        for nbytes in (8, 24, 100, 4000, 9000):
            address = space.allocate(nbytes)
            assert address % 8 == 0


class TestMarkSweepOnBlocks:
    def _vm(self, heap_bytes=1 << 20):
        collector = MarkSweepCollector(heap_bytes, space_policy="blocks")
        return VirtualMachine(collector=collector, assertions=False)

    def test_collects_and_recycles(self):
        vm = self._vm()
        cls = make_node_class(vm)
        nodes = build_chain(vm, cls, 10)
        nodes[4]["next"] = None
        vm.gc()
        assert vm.heap.stats.objects_live == 5

    def test_runs_workload_under_pressure(self):
        collector = MarkSweepCollector(128 << 10, space_policy="blocks")
        vm = VirtualMachine(collector=collector, assertions=True)
        from repro.workloads.jbb import JbbConfig, run_pseudojbb

        result = run_pseudojbb(
            vm,
            JbbConfig(
                iterations=1,
                transactions_per_iteration=200,
                assert_dead_orders=True,
                gc_per_iteration=True,
            ),
        )
        assert result.violations == 0
        assert vm.stats.collections >= 1

    def test_matches_freelist_reachability(self):
        survivors = []
        for policy in ("freelist", "blocks"):
            collector = MarkSweepCollector(1 << 20, space_policy=policy)
            vm = VirtualMachine(collector=collector, assertions=False)
            cls = make_node_class(vm)
            nodes = build_chain(vm, cls, 20)
            nodes[9]["next"] = None
            vm.gc()
            survivors.append(sum(1 for n in nodes if n.is_live))
        assert survivors[0] == survivors[1] == 10

    def test_heap_verifies_clean(self):
        vm = self._vm()
        from repro.gc.verify import verify_heap

        cls = make_node_class(vm)
        build_chain(vm, cls, 30)
        vm.gc()
        assert verify_heap(vm) == []

    def test_unknown_policy_rejected(self):
        with pytest.raises(HeapError):
            MarkSweepCollector(1 << 20, space_policy="arena")
