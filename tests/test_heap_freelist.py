"""Unit tests for size classes and free lists."""

import pytest

from repro.errors import HeapError
from repro.heap.freelist import SIZE_CLASSES, FreeList, size_class_for
from repro.heap.layout import WORD_BYTES, align_up


class TestSizeClasses:
    def test_ascending_and_aligned(self):
        assert list(SIZE_CLASSES) == sorted(SIZE_CLASSES)
        for size in SIZE_CLASSES:
            assert size % WORD_BYTES == 0

    def test_smallest_class_is_one_word(self):
        assert SIZE_CLASSES[0] == WORD_BYTES

    def test_size_class_at_least_request(self):
        for n in range(1, 2000, 17):
            assert size_class_for(n) >= n

    def test_exact_class_for_small_sizes(self):
        assert size_class_for(8) == 8
        assert size_class_for(24) == 24
        assert size_class_for(25) == 32

    def test_large_objects_get_exact_cells(self):
        big = SIZE_CLASSES[-1] + 1000
        assert size_class_for(big) == align_up(big)

    def test_zero_or_negative_rejected(self):
        with pytest.raises(HeapError):
            size_class_for(0)
        with pytest.raises(HeapError):
            size_class_for(-8)

    def test_class_waste_bounded(self):
        """Geometric classes waste at most ~25%."""
        for n in range(WORD_BYTES, SIZE_CLASSES[-1], 13):
            cell = size_class_for(n)
            assert cell <= align_up(int(n * 1.3)) + WORD_BYTES


class TestFreeList:
    def test_pop_empty_returns_none(self):
        fl = FreeList()
        assert fl.pop(16) is None

    def test_push_pop_roundtrip(self):
        fl = FreeList()
        fl.push(0x1000, 16)
        assert fl.free_bytes == 16
        assert fl.pop(16) == 0x1000
        assert fl.free_bytes == 0

    def test_pop_wrong_size_misses(self):
        fl = FreeList()
        fl.push(0x1000, 16)
        assert fl.pop(32) is None
        assert fl.pop(16) == 0x1000

    def test_lifo_recycling(self):
        fl = FreeList()
        fl.push(0x1000, 16)
        fl.push(0x2000, 16)
        assert fl.pop(16) == 0x2000
        assert fl.pop(16) == 0x1000

    def test_cell_count(self):
        fl = FreeList()
        fl.push(0x1000, 16)
        fl.push(0x2000, 32)
        assert fl.cell_count() == 2

    def test_clear(self):
        fl = FreeList()
        fl.push(0x1000, 16)
        fl.clear()
        assert fl.cell_count() == 0
        assert fl.free_bytes == 0
        assert fl.pop(16) is None
