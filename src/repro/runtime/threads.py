"""Mutator threads, stack frames, and static roots.

The collector's roots are exactly what these classes expose: every reference
local in every frame of every thread, plus the static reference table.  Each
root source implements two operations the collectors need:

* ``root_entries()`` — yield ``(description, address)`` pairs for tracing,
  where the description feeds the Figure-1-style path report ("where does
  the leak path *start*?").
* ``apply_forwarding(fwd)`` — rewrite root slots after a copying collection.

Threads also carry the per-thread region state from §2.3.2 of the paper:
"Each thread in Jikes RVM has a boolean flag to indicate whether it is
currently in an alldead region, and a queue to store a list of objects that
have been allocated while in the region."  The queue holds addresses weakly:
it must never keep its objects alive, so it is *not* a root source; the
collectors purge it on sweep and forward it on copy instead.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import RegionError
from repro.heap.layout import NULL


class Frame:
    """One stack frame: named reference locals (roots) and scalar locals."""

    __slots__ = ("method", "refs", "scalars", "thread")

    def __init__(self, method: str, thread: "MutatorThread"):
        self.method = method
        self.thread = thread
        self.refs: dict[str, int] = {}
        self.scalars: dict[str, object] = {}

    def set_ref(self, name: str, address: int) -> None:
        """Store a reference local (``NULL`` is allowed and stays a root slot)."""
        self.refs[name] = address

    def get_ref(self, name: str) -> int:
        return self.refs.get(name, NULL)

    def clear_ref(self, name: str) -> None:
        """The Java ``x = null`` idiom: keep the slot, null the reference."""
        if name in self.refs:
            self.refs[name] = NULL

    def drop_ref(self, name: str) -> None:
        """Remove the slot entirely (local goes out of scope)."""
        self.refs.pop(name, None)

    def set_scalar(self, name: str, value: object) -> None:
        self.scalars[name] = value

    def get_scalar(self, name: str) -> object:
        return self.scalars[name]

    def root_entries(self) -> Iterator[tuple[str, int]]:
        for name, address in self.refs.items():
            if address != NULL:
                yield f"local '{name}' in {self.method}", address

    def apply_forwarding(self, fwd: dict[int, int]) -> None:
        for name, address in self.refs.items():
            new = fwd.get(address)
            if new is not None:
                self.refs[name] = new

    def null_out(self, victims: set[int]) -> None:
        for name, address in self.refs.items():
            if address in victims:
                self.refs[name] = NULL

    def __repr__(self) -> str:
        return f"<frame {self.method} ({len(self.refs)} refs)>"


class StaticRoots:
    """The VM's static/global reference table (class statics in Java)."""

    def __init__(self) -> None:
        self.refs: dict[str, int] = {}
        self.scalars: dict[str, object] = {}

    def set_ref(self, name: str, address: int) -> None:
        self.refs[name] = address

    def get_ref(self, name: str) -> int:
        return self.refs.get(name, NULL)

    def clear_ref(self, name: str) -> None:
        if name in self.refs:
            self.refs[name] = NULL

    def drop_ref(self, name: str) -> None:
        self.refs.pop(name, None)

    def root_entries(self) -> Iterator[tuple[str, int]]:
        for name, address in self.refs.items():
            if address != NULL:
                yield f"static '{name}'", address

    def apply_forwarding(self, fwd: dict[int, int]) -> None:
        for name, address in self.refs.items():
            new = fwd.get(address)
            if new is not None:
                self.refs[name] = new

    def null_out(self, victims: set[int]) -> None:
        for name, address in self.refs.items():
            if address in victims:
                self.refs[name] = NULL


class MutatorThread:
    """One mutator thread: a frame stack plus §2.3.2 region state."""

    def __init__(self, thread_id: int, name: str):
        self.thread_id = thread_id
        self.name = name
        self.frames: list[Frame] = []
        #: §2.3.2: "a boolean flag to indicate whether it is currently in an
        #: alldead region, and a queue to store a list of objects that have
        #: been allocated while in the region."
        self.in_region = False
        self.region_queue: list[int] = []
        self.region_label: Optional[str] = None
        #: JNI-style handle scopes: each is a root source registering the
        #: addresses of objects Python driver code is actively using.
        self.scopes: list = []

    # -- frames -------------------------------------------------------------------

    def push_frame(self, method: str) -> Frame:
        frame = Frame(method, self)
        self.frames.append(frame)
        return frame

    def pop_frame(self) -> Frame:
        if not self.frames:
            raise RegionError(f"thread {self.name!r} has no frame to pop")
        return self.frames.pop()

    @property
    def current_frame(self) -> Frame:
        if not self.frames:
            raise RegionError(f"thread {self.name!r} has no active frame")
        return self.frames[-1]

    # -- region state (assert-alldead) ---------------------------------------------

    def begin_region(self, label: Optional[str] = None) -> None:
        if self.in_region:
            raise RegionError(
                f"thread {self.name!r} is already in region {self.region_label!r}"
            )
        self.in_region = True
        self.region_label = label
        self.region_queue = []

    def end_region(self) -> list[int]:
        """Reset the region flag and hand back the allocation queue."""
        if not self.in_region:
            raise RegionError(f"thread {self.name!r} is not in a region")
        self.in_region = False
        queue, self.region_queue = self.region_queue, []
        return queue

    def note_allocation(self, address: int) -> None:
        """Allocation hook: record region allocations (checked on every alloc)."""
        if self.in_region:
            self.region_queue.append(address)

    # -- root enumeration -----------------------------------------------------------

    def root_entries(self) -> Iterator[tuple[str, int]]:
        for depth, frame in enumerate(self.frames):
            for desc, address in frame.root_entries():
                yield f"{self.name}#{depth} {desc}", address
        for scope in self.scopes:
            for desc, address in scope.root_entries():
                yield f"{self.name} {desc}", address

    def apply_forwarding(self, fwd: dict[int, int]) -> None:
        for frame in self.frames:
            frame.apply_forwarding(fwd)
        for scope in self.scopes:
            scope.apply_forwarding(fwd)
        # The region queue holds addresses weakly but must still follow moves.
        self.region_queue = [fwd.get(a, a) for a in self.region_queue]

    def null_out(self, victims: set[int]) -> None:
        for frame in self.frames:
            frame.null_out(victims)
        for scope in self.scopes:
            scope.null_out(victims)

    def purge_freed(self, freed: set[int]) -> None:
        """Drop reclaimed objects from the region queue (sweep hook)."""
        if self.region_queue:
            self.region_queue = [a for a in self.region_queue if a not in freed]

    def __repr__(self) -> str:
        region = f" region={self.region_label!r}" if self.in_region else ""
        return f"<thread {self.name} frames={len(self.frames)}{region}>"
