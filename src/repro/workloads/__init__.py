"""Benchmark workloads: pseudojbb, _209_db, lusearch, SwapLeak, synthetics."""

from repro.workloads.containers import HashTable, IntVector, Vector
from repro.workloads.db import Database, DbConfig, DbResult, run_db
from repro.workloads.jbb import JbbConfig, JbbResult, LongBTree, run_pseudojbb
from repro.workloads.lusearch import LusearchConfig, LusearchResult, run_lusearch
from repro.workloads.suite import SuiteEntry, build_suite, measure_live_peak
from repro.workloads.swapleak import SwapLeakConfig, SwapLeakResult, run_swapleak
from repro.workloads.synthetic import PROFILES, SyntheticProfile, run_synthetic

__all__ = [
    "HashTable",
    "IntVector",
    "Vector",
    "Database",
    "DbConfig",
    "DbResult",
    "run_db",
    "JbbConfig",
    "JbbResult",
    "LongBTree",
    "run_pseudojbb",
    "LusearchConfig",
    "LusearchResult",
    "run_lusearch",
    "SuiteEntry",
    "build_suite",
    "measure_live_peak",
    "SwapLeakConfig",
    "SwapLeakResult",
    "run_swapleak",
    "PROFILES",
    "SyntheticProfile",
    "run_synthetic",
]
