"""Continuous heap-health monitoring: time series, MMU, SLOs, health, HTTP."""

from __future__ import annotations

import json
import random
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.heap.object_model import FieldKind
from repro.monitor import (
    AlertEvent,
    BurnRateRule,
    HEALTH_SCHEMA,
    MonitorHub,
    MonitorServer,
    SloObjective,
    SloSet,
    TimeSeries,
    busy_time,
    default_slos,
    health_report,
    health_score,
    health_status,
    merge_intervals,
    mmu,
    mmu_curve,
    render_monitor_frame,
    render_monitor_metrics,
    run_monitor,
    utilization_timeline,
    validate_health_report,
)
from repro.runtime.vm import VirtualMachine
from repro.telemetry import MemorySink, validate_exposition


def churn(vm, node_cls, objects: int = 400, batch: int = 40) -> None:
    """Allocate garbage in batches so the VM collects along the way."""
    with vm.scope("churn"):
        for start in range(0, objects, batch):
            batch_nodes = [vm.new(node_cls) for _ in range(batch)]
            del batch_nodes
    vm.gc("churn: settle")


def monitored_vm(slos=None, heap=1 << 20) -> VirtualMachine:
    hub = MonitorHub(slos) if slos is not None else MonitorHub()
    return VirtualMachine(heap_bytes=heap, monitor=hub)


# -- TimeSeries -------------------------------------------------------------------------


class TestTimeSeries:
    def test_append_and_query(self):
        ts = TimeSeries("pause_s", capacity=8)
        for i in range(5):
            ts.append(float(i), i * 10.0)
        assert len(ts) == 5
        assert ts.latest() == (4.0, 40.0)
        assert ts.latest_value() == 40.0
        assert ts.values() == [0.0, 10.0, 20.0, 30.0, 40.0]
        assert ts.window(2.0) == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
        assert ts.window(1.0, until=3.0) == [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]

    def test_bounded_with_drop_accounting(self):
        ts = TimeSeries("x", capacity=4)
        for i in range(10):
            ts.append(float(i), float(i))
        assert len(ts) == 4
        assert ts.appended == 10
        assert ts.dropped == 6
        assert ts.values() == [6.0, 7.0, 8.0, 9.0]

    def test_downsample_aggregators(self):
        ts = TimeSeries("x")
        # Two points in bucket 0, two in bucket 1, one in bucket 3.
        for t, v in ((0.0, 1.0), (0.5, 3.0), (1.2, 10.0), (1.9, 20.0), (3.1, 7.0)):
            ts.append(t, v)
        assert ts.downsample(1.0, "mean") == [(0.0, 2.0), (1.0, 15.0), (3.0, 7.0)]
        assert ts.downsample(1.0, "max") == [(0.0, 3.0), (1.0, 20.0), (3.0, 7.0)]
        assert ts.downsample(1.0, "count") == [(0.0, 2.0), (1.0, 2.0), (3.0, 1.0)]
        assert ts.downsample(1.0, "last") == [(0.0, 3.0), (1.0, 20.0), (3.0, 7.0)]

    def test_downsample_windowed(self):
        ts = TimeSeries("x")
        for i in range(10):
            ts.append(float(i), float(i))
        rows = ts.downsample(2.0, "sum", since=4.0, until=7.0)
        assert rows == [(4.0, 9.0), (6.0, 13.0)]

    def test_downsample_empty_and_errors(self):
        ts = TimeSeries("x")
        assert ts.downsample(1.0) == []
        ts.append(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            ts.downsample(0.0)
        with pytest.raises(ConfigurationError):
            ts.downsample(1.0, "median")

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            TimeSeries("x", capacity=0)


# -- interval normalization -------------------------------------------------------------


class TestMergeIntervals:
    def test_sorts_and_coalesces(self):
        merged = merge_intervals([(5.0, 6.0), (1.0, 2.0), (1.5, 3.0)])
        assert merged == [(1.0, 3.0), (5.0, 6.0)]

    def test_drops_empty_and_handles_touching(self):
        merged = merge_intervals([(1.0, 1.0), (2.0, 3.0), (3.0, 4.0)])
        assert merged == [(2.0, 4.0)]

    def test_empty(self):
        assert merge_intervals([]) == []


# -- MMU vs brute-force oracle ----------------------------------------------------------


def oracle_busy(intervals, start, end):
    """Independent overlap sum, chronological — the float-exactness twin."""
    total = 0.0
    for s, e in intervals:
        overlap_lo = max(s, start)
        overlap_hi = min(e, end)
        if overlap_hi > overlap_lo:
            total += overlap_hi - overlap_lo
    return total


def oracle_mmu(intervals, window, t0, t1):
    """Brute-force sliding window: evaluate every candidate start position
    (pause edges and edges shifted by the window, clipped), independently
    of the implementation's sweep."""
    merged = merge_intervals(intervals)
    span = t1 - t0
    if span == 0.0:
        return 1.0
    if span <= window:
        return max(0.0, (span - oracle_busy(merged, t0, t1)) / span)
    starts = {t0, t1 - window}
    for s, e in merged:
        for candidate in (s, e, s - window, e - window):
            if t0 <= candidate <= t1 - window:
                starts.add(candidate)
    worst = 0.0
    for start in sorted(starts):
        busy = oracle_busy(merged, start, start + window)
        if busy > worst:
            worst = busy
    return max(0.0, (window - worst) / window)


class TestMmu:
    def test_no_pauses_is_full_utilization(self):
        assert mmu([], 1.0, 0.0, 10.0) == 1.0

    def test_single_pause_exact(self):
        # One 10ms pause in a 1s run; any 100ms window holding it has
        # 90ms of mutator time.
        intervals = [(0.5, 0.51)]
        assert mmu(intervals, 0.1, 0.0, 1.0) == pytest.approx(0.9)
        assert mmu(intervals, 0.1, 0.0, 1.0) == oracle_mmu(intervals, 0.1, 0.0, 1.0)

    def test_back_to_back_pauses(self):
        # Two adjacent 10ms pauses act as one 20ms pause.
        intervals = [(0.5, 0.51), (0.51, 0.52)]
        assert mmu(intervals, 0.1, 0.0, 1.0) == pytest.approx(0.8)
        assert mmu(intervals, 0.04, 0.0, 1.0) == pytest.approx(0.5)

    def test_window_longer_than_run(self):
        # Span 1s, window 10s: the whole span is the single window.
        intervals = [(0.2, 0.4)]
        assert mmu(intervals, 10.0, 0.0, 1.0) == pytest.approx(0.8)

    def test_window_saturated_by_pause(self):
        intervals = [(0.3, 0.7)]
        assert mmu(intervals, 0.2, 0.0, 1.0) == 0.0

    def test_empty_span(self):
        assert mmu([(0.0, 1.0)], 0.5, 5.0, 5.0) == 1.0

    def test_exact_oracle_equality_randomized(self):
        # The load-bearing property: the breakpoint sweep returns the
        # bit-identical float the brute-force sliding window returns.
        rng = random.Random(20090615)
        for trial in range(40):
            t0 = rng.uniform(0.0, 2.0)
            t1 = t0 + rng.uniform(0.5, 8.0)
            intervals = []
            cursor = t0
            for _ in range(rng.randint(0, 12)):
                cursor += rng.uniform(0.0, 0.4)
                width = rng.uniform(0.001, 0.2)
                if cursor + width > t1:
                    break
                intervals.append((cursor, cursor + width))
                cursor += width
            rng.shuffle(intervals)
            for window in (0.01, 0.1, 0.37, 1.0, 10.0):
                got = mmu(intervals, window, t0, t1)
                want = oracle_mmu(intervals, window, t0, t1)
                assert got == want, (trial, window, intervals, got, want)
                assert 0.0 <= got <= 1.0

    def test_dense_grid_never_beats_the_sweep(self):
        # Sampled window placements can only see >= the minimum the
        # breakpoint sweep found (modulo float dust on the busy sums).
        intervals = [(0.11, 0.13), (0.4, 0.45), (0.8, 0.91)]
        result = mmu(intervals, 0.2, 0.0, 1.0)
        merged = merge_intervals(intervals)
        for i in range(400):
            start = i * (1.0 - 0.2) / 399
            util = (0.2 - busy_time(merged, start, start + 0.2)) / 0.2
            assert util >= result - 1e-12

    def test_mmu_curve_sorted_and_monotone_shape(self):
        intervals = [(0.2, 0.25), (0.6, 0.64)]
        curve = mmu_curve(intervals, [1.0, 0.01, 0.1], 0.0, 1.0)
        assert [w for w, _ in curve] == [0.01, 0.1, 1.0]
        for _, value in curve:
            assert 0.0 <= value <= 1.0

    def test_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            mmu([], 0.0, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            mmu([], 1.0, 2.0, 1.0)


class TestUtilizationTimeline:
    def test_buckets_and_partial_tail(self):
        rows = utilization_timeline([(0.25, 0.5)], 0.0, 2.5, 1.0)
        assert [t for t, _ in rows] == [0.0, 1.0, 2.0]
        assert rows[0][1] == pytest.approx(0.75)
        assert rows[1][1] == 1.0
        assert rows[2][1] == 1.0  # half-width tail, fully mutator

    def test_fully_paused_bucket(self):
        rows = utilization_timeline([(1.0, 2.0)], 0.0, 3.0, 1.0)
        assert rows[1][1] == 0.0

    def test_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            utilization_timeline([], 0.0, 1.0, 0.0)


# -- MonitorHub wiring ------------------------------------------------------------------


class TestMonitorHub:
    def test_vm_monitor_kwarg_attaches_hub(self):
        vm = VirtualMachine(heap_bytes=1 << 20, monitor=True)
        assert isinstance(vm.monitor, MonitorHub)
        assert vm.monitor.slos is not None  # stock catalog
        node = vm.define_class("N", [("next", FieldKind.REF)])
        churn(vm, node)
        assert vm.monitor.gc_events_seen == vm.stats.collections
        assert len(vm.monitor.pause_intervals) == vm.stats.collections

    def test_monitor_off_by_default_zero_state(self):
        vm = VirtualMachine(heap_bytes=1 << 20)
        assert vm.monitor is None

    def test_monitor_requires_telemetry(self):
        with pytest.raises(ConfigurationError):
            VirtualMachine(heap_bytes=1 << 20, telemetry=False, monitor=True)

    def test_intervals_match_event_timestamps(self):
        vm = monitored_vm()
        node = vm.define_class("N", [("next", FieldKind.REF)])
        churn(vm, node)
        events = vm.telemetry.events.snapshot()
        assert events
        for event, interval in zip(events, vm.monitor.pause_intervals):
            assert interval == event.pause_interval
            assert interval[1] - interval[0] == pytest.approx(event.pause_s)

    def test_series_follow_events(self):
        vm = monitored_vm()
        node = vm.define_class("N", [("next", FieldKind.REF)])
        churn(vm, node)
        hub = vm.monitor
        latest = vm.telemetry.events.latest
        assert hub.series["pause_s"].latest_value() == latest.pause_s
        assert hub.series["heap_live_bytes"].latest_value() == latest.bytes_after
        assert hub.series["occupancy"].latest_value() == latest.occupancy_after
        assert 0.0 <= hub.series["utilization"].latest_value() <= 1.0

    def test_counter_identity_with_monitor_armed(self):
        """The hub observes collections; it must never change them."""
        counters = {}
        for armed in (False, True):
            vm = VirtualMachine(heap_bytes=256 << 10, monitor=armed)
            node = vm.define_class("N", [("next", FieldKind.REF)])
            churn(vm, node, objects=600)
            vm.collector.sweep_all()
            s = vm.stats
            counters[armed] = (
                s.collections, s.objects_traced, s.edges_traced,
                s.objects_freed, s.bytes_freed,
            )
        assert counters[False] == counters[True]

    def test_mmu_and_utilization_queries(self):
        vm = monitored_vm()
        node = vm.define_class("N", [("next", FieldKind.REF)])
        churn(vm, node)
        hub = vm.monitor
        assert 0.0 <= hub.mmu(0.1) <= 1.0
        points = hub.mmu_points((0.01, 1.0))
        assert len(points) == 2 and points[0][0] == 0.01
        assert 0.0 <= hub.utilization_now() <= 1.0
        buckets = hub.utilization_buckets(0.01)
        assert buckets and all(0.0 <= u <= 1.0 for _t, u in buckets)


# -- SLO burn-rate engine ---------------------------------------------------------------


def threshold_rule(budget=0.1, factor=2.0, long_window=10, short_window=4,
                   clear_good=3, limit=0.05):
    objective = SloObjective(
        "test-pause", f"pause under {limit}s", budget=budget,
        probe=lambda hub, e: e.pause_s <= limit,
    )
    return BurnRateRule(objective, long_window=long_window,
                        short_window=short_window, factor=factor,
                        clear_good=clear_good)


class TestBurnRate:
    def test_fires_when_both_windows_burn(self):
        rule = threshold_rule()
        alerts = [rule.observe(False, seq=i, wall_time=0.0) for i in range(3)]
        fired = [a for a in alerts if a is not None]
        assert len(fired) == 1 and fired[0].state == "firing"
        assert rule.firing
        assert fired[0].burn_rate >= rule.factor
        assert fired[0].short_burn_rate >= rule.factor

    def test_long_window_alone_does_not_fire(self):
        # Crafted so the long window reaches the firing factor exactly
        # when the short window is quiet: T,F,F,T,F with long=4/short=2,
        # budget 0.25, factor 3.  At the last observation the long rate
        # is 0.75/0.25 = 3x (>= factor) but the short rate is only
        # 0.5/0.25 = 2x -> the rule must stay silent (stale-burn guard).
        rule = threshold_rule(budget=0.25, factor=3.0, long_window=4,
                              short_window=2, clear_good=100)
        observations = [True, False, False, True, False]
        alerts = [rule.observe(good, seq=i, wall_time=0.0)
                  for i, good in enumerate(observations)]
        assert not rule.firing and not any(alerts)
        long_rate, short_rate = rule.burn_rates()
        assert long_rate >= rule.factor > short_rate

    def test_clear_hysteresis(self):
        rule = threshold_rule(clear_good=3)
        for i in range(3):
            rule.observe(False, seq=i, wall_time=0.0)
        assert rule.firing
        # One good observation in the middle of the incident: stays firing.
        assert rule.observe(True, seq=3, wall_time=0.0) is None
        assert rule.observe(False, seq=4, wall_time=0.0) is None
        assert rule.firing
        # Three consecutive good observations clear it.
        assert rule.observe(True, seq=5, wall_time=0.0) is None
        assert rule.observe(True, seq=6, wall_time=0.0) is None
        resolved = rule.observe(True, seq=7, wall_time=0.0)
        assert resolved is not None and resolved.state == "resolved"
        assert not rule.firing
        assert rule.transitions == 2

    def test_zero_budget_fires_immediately(self):
        rule = threshold_rule(budget=0.0, clear_good=2)
        alert = rule.observe(False, seq=1, wall_time=0.0)
        assert alert is not None and alert.state == "firing"
        assert alert.burn_rate == pytest.approx(1e18, rel=1e17) or alert.burn_rate == float("inf")

    def test_zero_budget_does_not_flap_on_stale_history(self):
        # Regression: after a clear, the old bad observations still inside
        # the long window must not re-fire the rule.
        rule = threshold_rule(budget=0.0, long_window=20, clear_good=2)
        rule.observe(False, seq=1, wall_time=0.0)
        assert rule.firing
        transitions = []
        for i in range(10):
            alert = rule.observe(True, seq=2 + i, wall_time=0.0)
            if alert is not None:
                transitions.append(alert.state)
        assert transitions == ["resolved"]
        assert not rule.firing
        # A fresh bad observation fires again.
        again = rule.observe(False, seq=99, wall_time=0.0)
        assert again is not None and again.state == "firing"

    def test_budget_remaining(self):
        rule = threshold_rule(budget=0.5, long_window=4)
        for good in (True, True, False, False):
            rule.observe(good, seq=0, wall_time=0.0)
        assert rule.budget_remaining() == pytest.approx(0.0)

    def test_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            SloObjective("x", "d", budget=1.5, probe=lambda h, e: True)
        with pytest.raises(ConfigurationError):
            SloObjective("x", "d", budget=0.1, probe=lambda h, e: True,
                         severity="sms")
        with pytest.raises(ConfigurationError):
            BurnRateRule(
                SloObjective("x", "d", budget=0.1, probe=lambda h, e: True),
                long_window=4, short_window=8,
            )


class TestSloSet:
    def test_duplicate_objectives_rejected(self):
        rule = threshold_rule()
        with pytest.raises(ConfigurationError):
            SloSet([rule, threshold_rule()])
        slos = SloSet([rule])
        with pytest.raises(ConfigurationError):
            slos.add(threshold_rule())

    def test_status_document(self):
        slos = SloSet([threshold_rule()])
        doc = slos.status()
        assert doc["schema"] == "repro-slo/1"
        assert doc["healthy"] is True
        row = doc["objectives"][0]
        assert row["objective"] == "test-pause"
        assert row["budget_remaining"] == 1.0
        json.dumps(doc)  # must be JSON-serializable (no Infinity)

    def test_default_catalog_validates_inputs(self):
        assert len(default_slos().rules) == 5
        with pytest.raises(ConfigurationError):
            default_slos(mmu_floor=2.0)
        with pytest.raises(ConfigurationError):
            default_slos(pause_p99_s=0.0)

    def test_exit_codes(self):
        slos = SloSet([threshold_rule()])
        assert slos.exit_code() == 0
        for i in range(4):
            slos.rules[0].observe(False, seq=i, wall_time=0.0)
        assert slos.exit_code() == 1


class TestAlertsThroughTelemetry:
    def test_alerts_reach_sinks_and_the_hub(self):
        # An impossible pause objective (zero budget, threshold 0) goes
        # bad on the first collection; its alert must travel the sink
        # fan-out like any other event.
        objective = SloObjective(
            "impossible", "pause under 0s", budget=0.0,
            probe=lambda hub, e: e.pause_s <= 0.0,
        )
        slos = SloSet([BurnRateRule(objective, clear_good=2)])
        vm = monitored_vm(slos)
        sink = MemorySink()
        vm.telemetry.add_sink(sink)
        node = vm.define_class("N", [("next", FieldKind.REF)])
        churn(vm, node)
        hub = vm.monitor
        assert hub.alerts, "hub never saw its own alert"
        alert = hub.alerts[0]
        assert isinstance(alert, AlertEvent)
        assert alert.objective == "impossible" and alert.state == "firing"
        sunk = [e for e in sink.events if getattr(e, "event", None) == "alert"]
        assert sunk, "MemorySink never saw the alert"
        assert sunk[0].as_dict()["objective"] == "impossible"
        assert not hub.slos.healthy()
        assert health_status(hub) == ("unhealthy", 503)


# -- health -----------------------------------------------------------------------------


class TestHealth:
    def test_report_validates_and_scores(self):
        vm = monitored_vm(default_slos())
        node = vm.define_class("N", [("next", FieldKind.REF)])
        churn(vm, node)
        hub = vm.monitor
        report = health_report(hub)
        assert validate_health_report(report) == []
        assert report["schema"] == HEALTH_SCHEMA
        assert report["status"] == "ok" and report["http_code"] == 200
        assert 0.0 <= report["score"] <= 100.0
        assert report["gc_events"] == hub.gc_events_seen
        assert report["slo"]["schema"] == "repro-slo/1"
        assert 0.0 <= health_score(hub) <= 100.0
        json.dumps(report)

    def test_validator_catches_drift(self):
        vm = monitored_vm()
        node = vm.define_class("N", [("next", FieldKind.REF)])
        churn(vm, node)
        report = health_report(vm.monitor)
        report["schema"] = "repro-health/0"
        report.pop("mmu")
        report["http_code"] = 418
        problems = validate_health_report(report)
        assert len(problems) >= 3

    def test_frame_renders(self):
        vm = monitored_vm(default_slos())
        node = vm.define_class("N", [("next", FieldKind.REF)])
        churn(vm, node)
        frame = render_monitor_frame(vm, vm.monitor, 1, 1.0)
        assert "health" in frame and "MMU:" in frame and "SLOs:" in frame
        assert "pause-p99" in frame


# -- HTTP server ------------------------------------------------------------------------


def http_get(url):
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode()


class TestMonitorServer:
    @pytest.fixture
    def served(self):
        vm = monitored_vm(default_slos())
        node = vm.define_class("N", [("next", FieldKind.REF)])
        churn(vm, node)
        server = MonitorServer(vm.monitor, port=0).start()
        yield vm, server
        server.stop()

    def test_metrics_endpoint_conforms(self, served):
        vm, server = served
        code, body = http_get(server.url + "/metrics")
        assert code == 200
        assert validate_exposition(body) == []
        assert "repro_gc_pause_seconds" in body       # telemetry exporter
        assert "repro_mmu_ratio" in body              # monitor families
        assert "repro_heap_health_score" in body
        assert "repro_slo_budget_remaining_ratio" in body

    def test_health_endpoint(self, served):
        vm, server = served
        code, body = http_get(server.url + "/health")
        assert code == 200
        report = json.loads(body)
        assert validate_health_report(report) == []

    def test_slo_endpoint(self, served):
        vm, server = served
        code, body = http_get(server.url + "/slo")
        assert code == 200
        doc = json.loads(body)
        assert doc["schema"] == "repro-slo/1"
        assert len(doc["objectives"]) == 5

    def test_unknown_endpoint_404_and_root_index(self, served):
        vm, server = served
        code, body = http_get(server.url + "/nope")
        assert code == 404
        code, body = http_get(server.url + "/")
        assert code == 200 and "/metrics" in body

    def test_health_serves_503_when_firing(self):
        objective = SloObjective(
            "impossible", "pause under 0s", budget=0.0,
            probe=lambda hub, e: e.pause_s <= 0.0,
        )
        vm = monitored_vm(SloSet([BurnRateRule(objective)]))
        node = vm.define_class("N", [("next", FieldKind.REF)])
        churn(vm, node)
        with MonitorServer(vm.monitor, port=0) as server:
            code, body = http_get(server.url + "/health")
            assert code == 503
            assert json.loads(body)["status"] == "unhealthy"

    def test_render_monitor_metrics_standalone_conforms(self):
        vm = monitored_vm(default_slos())
        node = vm.define_class("N", [("next", FieldKind.REF)])
        churn(vm, node)
        assert validate_exposition(render_monitor_metrics(vm.monitor)) == []


# -- live view / CLI --------------------------------------------------------------------


class TestRunMonitor:
    def test_watch_loop_repaints_and_exits_clean(self, capsys):
        import io

        vm = monitored_vm(default_slos())
        node = vm.define_class("N", [("next", FieldKind.REF)])
        stream = io.StringIO()
        rc = run_monitor(
            vm, vm.monitor, lambda v: churn(v, node),
            interval=0.05, frames=None, stream=stream, ansi=False,
        )
        assert rc == 0
        out = stream.getvalue()
        assert "repro monitor" in out and "SLOs:" in out

    def test_watch_reports_slo_breach(self):
        import io

        objective = SloObjective(
            "impossible", "pause under 0s", budget=0.0,
            probe=lambda hub, e: e.pause_s <= 0.0,
        )
        vm = monitored_vm(SloSet([BurnRateRule(objective)]))
        node = vm.define_class("N", [("next", FieldKind.REF)])
        stream = io.StringIO()
        rc = run_monitor(
            vm, vm.monitor, lambda v: churn(v, node),
            interval=0.05, stream=stream, ansi=False,
        )
        assert rc == 1
        assert "SLO breach" in stream.getvalue()


class TestCliMonitor:
    def test_clean_run_exits_zero(self, capsys):
        from repro.__main__ import main

        assert main(["monitor", "--workload", "lusearch"]) == 0
        out = capsys.readouterr().out
        assert "repro monitor" in out and "SLOs:" in out

    def test_serve_watch_frames(self, capsys):
        from repro.__main__ import main

        rc = main([
            "monitor", "--workload", "lusearch",
            "--serve", "0", "--watch", "--frames", "2", "--interval", "0.05",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "serving /metrics /health /slo at http://127.0.0.1:" in out

    def test_unknown_workload_exits_two(self, capsys):
        from repro.__main__ import main

        assert main(["monitor", "--workload", "nope"]) == 2
        capsys.readouterr()

    def test_bad_slo_configuration_exits_two(self, capsys):
        from repro.__main__ import main

        assert main(["monitor", "--workload", "lusearch", "--mmu-floor", "2.0"]) == 2
        assert "configuration error" in capsys.readouterr().out

    def test_chaos_seed_breaches_slo(self, capsys):
        from repro.__main__ import main

        rc = main(["monitor", "--workload", "lusearch", "--chaos-seed", "7"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "SLO breach" in out
        assert "no-degradation" in out
