"""Ablation abl-dtrace: the cost of end-to-end request tracing.

Distributed tracing wraps every served request in lifecycle spans
(admission wait, ledger commit, executor wait, execution), re-parents
the tenant VM's in-pause span stream under the request, and stamps
trace context on every wire frame.  The contract is the same as
abl-service's, one notch stricter: a *traced* served run must stay
bit-identical — GC and assertion counters, and the violation log — to a
direct VM run with tracing off.  The span plumbing observes the
collector; it must never steer it.

GC time is gated loosely (executor-thread scheduling noise dominates);
counter identity is the hard gate.  The merged multi-track export must
also validate as a Chrome trace — a malformed trace is a failed
ablation, not just a broken viewer.
"""

from __future__ import annotations

from benchmarks.conftest import trials
from benchmarks.test_ablation_service import MAX_GC_TIME_RATIO, WORKLOAD, _run_direct
from repro.bench.methodology import confidence_interval_90, mean
from repro.service import AssertionService, ServiceClient, ServiceConfig
from repro.tracing.distributed import TraceContext, request_rows
from repro.tracing.export import validate_chrome_trace


def _run_traced(service: AssertionService):
    with ServiceClient("127.0.0.1", service.port, trace=TraceContext.new()) as client:
        client.hello()
        opened = client.open("bench", WORKLOAD)
        assert opened["type"] == "opened", opened
        result = client.submit(opened["session"])
        assert result["type"] == "result", result
        client.close_session(opened["session"])
    assert result["outcome"] == "completed", result
    assert client.frames_missed == 0
    return result["gc_seconds"], result["counters"], result["violations"]


def test_dtrace_counter_identity_and_overhead(once, figure_report):
    def run():
        direct = [_run_direct() for _ in range(trials())]
        config = ServiceConfig(http_port=None, tracing=True)
        with AssertionService(config) as service:
            traced = [_run_traced(service) for _ in range(trials())]
            payload = service.merged_trace_payload()
            rows = request_rows(service.tracer)
        return direct, traced, payload, rows

    direct, traced, payload, rows = once(run)
    direct_times = [t for t, _c, _v in direct]
    traced_times = [t for t, _c, _v in traced]
    ratio = mean(traced_times) / mean(direct_times)
    figure_report.append(
        f"Ablation abl-dtrace (direct VM vs traced server, '{WORKLOAD}'):\n"
        f"  direct: {mean(direct_times) * 1e3:.1f} ms ±{confidence_interval_90(direct_times) * 1e3:.1f}\n"
        f"  traced: {mean(traced_times) * 1e3:.1f} ms ±{confidence_interval_90(traced_times) * 1e3:.1f}\n"
        f"  ratio:  {ratio:.3f} (asserted <={MAX_GC_TIME_RATIO} for scheduling noise)\n"
        f"  export: {len(payload['traceEvents'])} events, "
        f"{len(rows)} request spans, 0 validation problems"
    )
    assert ratio < MAX_GC_TIME_RATIO

    # The hard gate: tracing on over the wire == tracing off on a bare VM.
    assert traced[0][1] == direct[0][1]
    assert traced[0][2] == direct[0][2]

    # And the observability artifact itself is sound.
    assert validate_chrome_trace(payload) == []
    assert all(row["outcome"] == "completed" for row in rows)
    assert len(rows) == trials()
