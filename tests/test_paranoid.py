"""The paranoid wellformedness walker and its per-GC collector hooks.

Three surfaces under test: :func:`repro.verify.paranoid.paranoid_problems`
(each allocator-structure invariant fires on hand-planted damage and stays
silent on clean heaps), ``verify_heap(..., paranoid=True)`` composition,
and the ``paranoid=True`` VM mode (walks around every collection, typed
``HeapVerificationError`` on damage, bit-identical counters when clean).
"""

from __future__ import annotations

import pytest

from repro.gc.verify import HeapVerificationError, verify_heap
from repro.heap import header as hdr
from repro.runtime.vm import VirtualMachine
from repro.verify import iter_spaces, paranoid_problems

HEAP = 1 << 20


def _populated_vm(collector: str = "marksweep", **kwargs):
    """A VM with a statically-rooted 16-node chain (all nodes stay live)."""
    vm = VirtualMachine(heap_bytes=HEAP, collector=collector,
                        telemetry=False, **kwargs)
    node = vm.define_class("PNode", [("next", "ref"), ("v", "int")])
    with vm.scope("populate"):
        handles = [vm.new(node, v=i) for i in range(16)]
        for a, b in zip(handles, handles[1:]):
            a["next"] = b
        vm.statics.set_ref("head", handles[0].address)
    return vm, handles


# -- clean heaps are clean --------------------------------------------------------------


@pytest.mark.parametrize("collector", ["marksweep", "semispace", "generational"])
def test_clean_heap_has_no_paranoid_problems(collector):
    vm, _handles = _populated_vm(collector)
    vm.gc("settle")
    assert paranoid_problems(vm) == []
    assert verify_heap(vm, raise_on_error=False, paranoid=True) == []


def test_iter_spaces_expands_zone_shards():
    vm = VirtualMachine(heap_bytes=HEAP, gc_workers=2, telemetry=False)
    names = [name for name, _space in iter_spaces(vm.collector)]
    assert any("/z" in name for name in names), names


# -- each invariant convicts planted damage ---------------------------------------------


def test_free_cell_aliasing_a_live_object_is_flagged():
    vm, handles = _populated_vm()
    space = vm.collector.space
    live = handles[0].address
    space.free_list.push(live, space.cell_size(live))
    problems = paranoid_problems(vm)
    assert any("aliases a live object" in p for p in problems), problems


def test_fenced_address_on_the_free_list_is_flagged():
    vm, handles = _populated_vm()
    space = vm.collector.space
    victim = handles[-1].address
    # Model a buggy sweep: the cell is both quarantined and reusable.
    vm.collector.quarantine.fence(victim)
    space.free_list.push(victim, space.cell_size(victim))
    problems = paranoid_problems(vm)
    assert any("is available for reuse" in p for p in problems), problems


def test_committed_cell_without_table_entry_is_flagged():
    vm, handles = _populated_vm()
    victim = handles[-1].address
    # Evict the object from the table while the chunk metadata still
    # charges the cell — a phantom allocation nobody owns.
    vm.heap.evict(vm.heap.get(victim))
    problems = paranoid_problems(vm)
    assert any("has no table entry" in p for p in problems), problems


def test_orphan_bump_cell_is_flagged():
    vm, handles = _populated_vm("semispace")
    space = vm.collector.from_space
    victim = handles[-1].address
    assert victim in space._allocated
    vm.heap.evict(vm.heap.get(victim))
    problems = paranoid_problems(vm)
    assert any("orphan bump cell" in p for p in problems), problems


def test_owned_bit_without_ownee_bit_is_flagged():
    vm, handles = _populated_vm()
    obj = vm.heap.get(handles[5].address)
    obj.status |= hdr.OWNED_BIT
    problems = paranoid_problems(vm)
    assert any("OWNED bit without the OWNEE bit" in p for p in problems), problems


def test_zone_routing_disagreement_is_flagged():
    vm = VirtualMachine(heap_bytes=HEAP, gc_workers=2, telemetry=False)
    node = vm.define_class("ZNode", [("v", "int")])
    with vm.scope("zones"):
        handles = [vm.new(node, v=i) for i in range(8)]
        facade = vm.collector.space
        address = handles[0].address
        home = facade.zone_of(address)
        wrong = (home + 1) % len(facade.shards)
        chunk = address >> 16
        cell = facade.shards[home]._chunks[chunk].pop(address)
        facade.shards[wrong]._chunks.setdefault(chunk, {})[address] = cell
        problems = paranoid_problems(vm)
        assert any("routes to zone" in p for p in problems), problems


# -- the per-GC hooks -------------------------------------------------------------------


def test_paranoid_vm_walks_around_every_collection():
    vm, _handles = _populated_vm(paranoid=True)
    assert vm.collector.paranoid is True
    before = vm.collector.paranoid_walks
    vm.gc("walk me")
    assert vm.collector.paranoid_walks == before + 2  # pre + post


def test_paranoid_hook_raises_typed_error_on_damage():
    vm, handles = _populated_vm(paranoid=True)
    space = vm.collector.space
    live = handles[0].address
    space.free_list.push(live, space.cell_size(live))
    with pytest.raises(HeapVerificationError) as excinfo:
        vm.gc("damaged")
    assert "paranoid[pre-gc]" in str(excinfo.value)
    assert excinfo.value.problems  # the full problem list rides along


def test_paranoid_minor_collections_are_walked_too():
    vm, _handles = _populated_vm("generational", paranoid=True)
    before = vm.collector.paranoid_walks
    vm.minor_gc("walk the nursery")
    assert vm.collector.paranoid_walks == before + 1  # post-minor


def test_paranoid_off_is_bit_identical():
    counters = {}
    for paranoid in (False, True):
        vm, _handles = _populated_vm(paranoid=paranoid)
        for _ in range(3):
            vm.gc("identity")
        s = vm.stats
        counters[paranoid] = (
            s.collections, s.objects_traced, s.edges_traced,
            s.objects_freed, s.bytes_freed, s.header_bit_checks,
        )
        if not paranoid:
            assert vm.collector.paranoid_walks == 0
    assert counters[False] == counters[True]


def test_readonly_verify_leaves_lazy_debt_untouched():
    vm = VirtualMachine(heap_bytes=HEAP, sweep_mode="lazy", telemetry=False)
    node = vm.define_class("LNode", [("v", "int")])
    with vm.scope("lazy"):
        for i in range(64):
            vm.new(node, v=i)
    vm.gc("make garbage")  # scope closed: all 64 are dead, sweep deferred
    debt = vm.collector.sweep_debt()
    assert debt > 0
    problems = verify_heap(vm, raise_on_error=False,
                           finish_lazy_sweep=False, paranoid=True)
    assert problems == []
    assert vm.collector.sweep_debt() == debt  # read-only: debt unchanged
