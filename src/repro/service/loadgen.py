"""Open-loop load generator for the assertion service.

Two modes:

* **flow** (default) — open-loop Poisson arrivals: session start times
  are drawn from a seeded exponential inter-arrival distribution and
  *not* gated on completions, so a slow server accumulates concurrency
  exactly the way real traffic does.  Each arrival runs the full session
  life: connect, hello, open (queued admission), submit, stream, close.
* **ramp** — every session opens first (a barrier), then all submit and
  close.  This drives concurrency to the admission limit
  deterministically: with more sessions than the budget admits, the
  report shows ``peak_concurrent`` at capacity and the overflow as
  explicit rejections — the acceptance-criteria shape.

The session mix is drawn (seeded) from the workload suite plus the
``swapleak`` leak generator, which guarantees streamed violation frames.
The report carries client-observed latency percentiles — open latency,
session duration, and the server-measured violation delivery lag — and
feeds the ``service-loadgen`` cell of ``BENCH_perf.json``.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError, ReproError, WireProtocolError
from repro.service.client import ServiceClient
from repro.service.server import AssertionService, ServiceConfig
from repro.telemetry.histogram import LogHistogram
from repro.tracing.distributed import TraceContext, request_rows

#: Default session mix: weighted toward small synthetics so a quick run
#: stays fast, with swapleak guaranteeing assertion-violation traffic.
DEFAULT_MIX: tuple[tuple[str, int], ...] = (
    ("swapleak", 4),
    ("xalan", 3),
    ("mtrt", 2),
    ("mpegaudio", 1),
)


@dataclass
class LoadgenConfig:
    sessions: int = 50
    rate: float = 200.0            #: arrivals per second (flow mode)
    seed: int = 0
    mode: str = "flow"             #: "flow" | "ramp"
    mix: tuple = DEFAULT_MIX
    quick: bool = False
    host: str = "127.0.0.1"
    port: Optional[int] = None     #: None = self-host an in-process service
    heap_budget_bytes: int = 8 << 20
    max_workers: int = 64          #: client-side thread cap
    #: Distributed tracing: each session carries a seeded TraceContext
    #: and the self-hosted service records request spans.  Implied by
    #: ``trace_out``; requires self-hosting (the merge layer reads the
    #: server's tracer in-process).
    tracing: bool = False
    trace_out: Optional[str] = None
    #: Override the self-hosted service's delivery-lag SLO.  A very
    #: tight value (microseconds) makes the burn-rate alert fire
    #: deterministically — the CI path for exemplar-bearing alerts.
    delivery_lag_slo_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.quick:
            self.sessions = min(self.sessions, 12)
            self.rate = min(self.rate, 400.0)
        if self.trace_out is not None:
            self.tracing = True


@dataclass
class LoadgenReport:
    sessions: int
    completed: int = 0
    rejected: int = 0
    errors: int = 0
    violation_frames: int = 0
    gc_event_frames: int = 0
    dropped_frames: int = 0
    peak_concurrent: int = 0
    admitted_total: int = 0
    rejected_total: int = 0
    wall_s: float = 0.0
    #: Client-observed seq gaps: frames the server numbered but shed.
    frames_missed: int = 0
    #: AlertEvent dicts from the self-hosted service's SLO rules
    #: (exemplar trace ids included), in firing order.
    alerts: list = field(default_factory=list)
    #: Per-request lifecycle rows from the server's DistributedTracer
    #: (tracing runs only; the ``repro trace serve`` table).
    requests: list = field(default_factory=list)
    #: Merged-export summary from ``write_merged_trace`` (trace_out runs).
    trace: Optional[dict] = None
    open_latency: LogHistogram = field(
        default_factory=lambda: LogHistogram(1e-6, 30.0)
    )
    session_duration: LogHistogram = field(
        default_factory=lambda: LogHistogram(1e-6, 30.0)
    )

    @property
    def ok(self) -> bool:
        return self.completed >= 1 and self.errors == 0

    def as_dict(self) -> dict:
        return {
            "sessions": self.sessions,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "violation_frames": self.violation_frames,
            "gc_event_frames": self.gc_event_frames,
            "dropped_frames": self.dropped_frames,
            "frames_missed": self.frames_missed,
            "peak_concurrent": self.peak_concurrent,
            "alerts": list(self.alerts),
            "requests": list(self.requests),
            "trace": self.trace,
            "wall_s": self.wall_s,
            "open_latency_s": {
                "p50": self.open_latency.percentile(50),
                "p90": self.open_latency.percentile(90),
                "p99": self.open_latency.percentile(99),
            },
            "session_duration_s": {
                "p50": self.session_duration.percentile(50),
                "p90": self.session_duration.percentile(90),
                "p99": self.session_duration.percentile(99),
            },
        }

    def render(self) -> str:
        d = self.as_dict()
        lines = [
            f"loadgen: {self.completed}/{self.sessions} sessions completed, "
            f"{self.rejected} rejected, {self.errors} errors "
            f"in {self.wall_s:.2f}s",
            f"  peak concurrent sessions : {self.peak_concurrent}",
            f"  violation frames streamed: {self.violation_frames}",
            f"  gc-event frames streamed : {self.gc_event_frames}"
            f" ({self.dropped_frames} shed)",
            f"  open latency p50/p90/p99 : "
            f"{d['open_latency_s']['p50'] * 1e3:.2f} / "
            f"{d['open_latency_s']['p90'] * 1e3:.2f} / "
            f"{d['open_latency_s']['p99'] * 1e3:.2f} ms",
            f"  session time p50/p90/p99 : "
            f"{d['session_duration_s']['p50'] * 1e3:.2f} / "
            f"{d['session_duration_s']['p90'] * 1e3:.2f} / "
            f"{d['session_duration_s']['p99'] * 1e3:.2f} ms",
        ]
        if self.frames_missed:
            lines.append(
                f"  seq gaps observed        : {self.frames_missed} "
                f"(shed frames counted client-side)"
            )
        if self.trace is not None:
            lines.append(
                f"  merged trace             : {self.trace['path']} "
                f"({self.trace['events']} events, "
                f"{self.trace['tenant_tracks']} tenant tracks)"
            )
        for alert in self.alerts:
            line = (
                f"  alert[{alert['objective']}] {alert['state']} "
                f"({alert['severity']}): {alert['detail']}"
            )
            if alert.get("exemplar"):
                line += f" exemplar={alert['exemplar']}"
            lines.append(line)
        return "\n".join(lines)


def _draw_mix(rng: random.Random, mix) -> str:
    names = [name for name, weight in mix for _ in range(weight)]
    return rng.choice(names)


class _Wave:
    """Countdown latch: ramp mode holds admitted sessions open until the
    whole wave has an admission *decision* (admitted or rejected), which
    pins peak concurrency at exactly what the budget allows."""

    def __init__(self, n: int):
        self._n = n
        self._lock = threading.Lock()
        self._event = threading.Event()

    def arrive(self) -> None:
        with self._lock:
            self._n -= 1
            if self._n <= 0:
                self._event.set()

    def wait(self, timeout: float) -> None:
        self._event.wait(timeout)


def _run_session(
    config: LoadgenConfig,
    port: int,
    index: int,
    workload: str,
    report: LoadgenReport,
    lock: threading.Lock,
    wave: Optional[_Wave],
    trace_ctx: Optional[TraceContext],
) -> None:
    started = time.perf_counter()
    try:
        client = ServiceClient(config.host, port, timeout=60.0, trace=trace_ctx)
    except OSError:
        with lock:
            report.errors += 1
        if wave is not None:
            wave.arrive()
        return
    try:
        client.hello()
        overrides = {"swaps": 32} if workload == "swapleak" else None
        # Distinct tenant per session, so multi-tenant artifacts (the
        # merged trace's tenant tracks, the tenant-labelled metrics)
        # genuinely fan out rather than collapsing onto one label.
        opened = client.open(
            f"tenant-{workload}-{index}", workload,
            wait=(config.mode == "flow"),
            overrides=overrides,
        )
        open_latency = time.perf_counter() - started
        with lock:
            report.open_latency.record(open_latency)
        if wave is not None:
            wave.arrive()
        if opened["type"] == "rejected":
            with lock:
                report.rejected += 1
            return
        if opened["type"] == "error":
            with lock:
                report.errors += 1
            return
        if wave is not None:
            wave.wait(timeout=60.0)
        session_id = opened["session"]
        streamed: list[dict] = []
        result = client.submit(session_id, collect=streamed)
        closed = client.close_session(session_id, collect=streamed)
        with lock:
            if result.get("type") == "result" and result.get("outcome") == "completed":
                report.completed += 1
            else:
                report.errors += 1
            if closed.get("type") != "closed":
                report.errors += 1
            report.violation_frames += sum(
                1 for f in streamed if f.get("type") == "violation"
            )
            report.gc_event_frames += sum(
                1 for f in streamed if f.get("type") == "gc-event"
            )
            report.dropped_frames += int(closed.get("dropped_frames", 0) or 0)
            report.frames_missed += client.frames_missed
            report.session_duration.record(time.perf_counter() - started)
    except (WireProtocolError, ReproError, OSError):
        with lock:
            report.errors += 1
    finally:
        client.close()


def run_loadgen(
    config: LoadgenConfig, service: Optional[AssertionService] = None
) -> LoadgenReport:
    """Drive the configured load; self-hosts a service when no port given."""
    if config.tracing and config.port is not None and service is None:
        raise ConfigurationError(
            "loadgen tracing requires a self-hosted service (drop --port): "
            "the merged trace is read from the server's tracer in-process"
        )
    own_service = None
    if config.port is None and service is None:
        server_config = ServiceConfig(
            host=config.host,
            heap_budget_bytes=config.heap_budget_bytes,
            http_port=None,
            tracing=config.tracing,
        )
        if config.delivery_lag_slo_s is not None:
            server_config.delivery_lag_slo_s = config.delivery_lag_slo_s
        own_service = AssertionService(server_config).start()
        service = own_service
    port = service.port if service is not None else config.port

    rng = random.Random(config.seed)
    workloads = [_draw_mix(rng, config.mix) for _ in range(config.sessions)]
    # Pre-draw the trace roots on the arrival loop's rng so session
    # threads never race on it: one deterministic trace id per session.
    contexts: list = [
        TraceContext.new(rng) if config.tracing else None
        for _ in range(config.sessions)
    ]
    report = LoadgenReport(sessions=config.sessions)
    lock = threading.Lock()
    wave = _Wave(config.sessions) if config.mode == "ramp" else None

    started = time.perf_counter()
    threads: list[threading.Thread] = []
    try:
        for i, workload in enumerate(workloads):
            thread = threading.Thread(
                target=_run_session,
                args=(config, port, i, workload, report, lock, wave, contexts[i]),
                name=f"loadgen-{i}",
                daemon=True,
            )
            threads.append(thread)
            thread.start()
            if config.mode == "flow" and i + 1 < len(workloads):
                # Open-loop: the next arrival is scheduled independently
                # of whether earlier sessions have finished.
                time.sleep(rng.expovariate(config.rate))
        for thread in threads:
            thread.join(timeout=120.0)
    finally:
        report.wall_s = time.perf_counter() - started
        if service is not None:
            snap = service.admission.snapshot()
            report.peak_concurrent = snap["peak_sessions"]
            report.admitted_total = snap["admitted_total"]
            report.rejected_total = snap["rejected_total"]
            report.alerts = [alert.as_dict() for alert in service.metrics.alerts]
            if service.tracer is not None:
                report.requests = request_rows(service.tracer)
                if config.trace_out is not None:
                    report.trace = service.write_merged_trace(
                        config.trace_out,
                        meta={"generator": "repro-loadgen", "seed": config.seed},
                    )
        if own_service is not None:
            own_service.stop()
    return report
