"""Heap substrate: object model, headers, addresses, spaces, free lists."""

from repro.heap.freelist import SIZE_CLASSES, FreeList, size_class_for
from repro.heap.heap import SPACE_STRIDE, HeapStats, ObjectHeap
from repro.heap.layout import (
    HEADER_BYTES,
    HEAP_BASE_ADDRESS,
    NULL,
    WORD_BYTES,
    align_up,
    is_aligned,
)
from repro.heap.object_model import ClassDescriptor, FieldDescriptor, FieldKind, HeapObject
from repro.heap.space import BumpSpace, FreeListSpace, Space

__all__ = [
    "SIZE_CLASSES",
    "FreeList",
    "size_class_for",
    "SPACE_STRIDE",
    "HeapStats",
    "ObjectHeap",
    "HEADER_BYTES",
    "HEAP_BASE_ADDRESS",
    "NULL",
    "WORD_BYTES",
    "align_up",
    "is_aligned",
    "ClassDescriptor",
    "FieldDescriptor",
    "FieldKind",
    "HeapObject",
    "BumpSpace",
    "FreeListSpace",
    "Space",
]
