"""The fault → invariant coverage matrix.

PR 5's injector proves the system *recovers* from its 11 fault kinds;
this module proves every fault is *caught by a named invariant* — the
difference between "nothing crashed" and "the damage was observed by a
check we can point at".  Each fault kind maps to exactly one named
invariant; a chaos run collects per-cell detection evidence, and the
matrix gates the run: a fault kind with zero covering evidence anywhere
in the matrix fails the soak (exit 1).

The invariant names are the catalog documented in DESIGN.md ("Verified
invariants"); the model checker (:mod:`repro.verify.modelcheck`) proves
the collector-level ones exhaustively at small scope, and the chaos
matrix proves each one fires against real injected damage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# No module-level import from repro.faults here: chaos.py imports this module,
# so reaching back into the faults package would be circular.  Key agreement
# with injector.FAULT_KINDS is asserted by the coverage unit tests.

#: fault kind -> (named invariant, what detection looks like).
FAULT_INVARIANTS: dict = {
    "flip-mark": (
        "header-hygiene",
        "sentinel clears stale MARK/OWNED bits outside a collection",
    ),
    "flip-dead": (
        "assert-dead-verdict",
        "trace reports a DEAD violation with site=None (injected marker)",
    ),
    "flip-unshared": (
        "assert-unshared-verdict",
        "repeat encounter reports an UNSHARED violation with site=None",
    ),
    "dangle-ref": (
        "reference-closure",
        "sentinel/walker flags a slot pointing outside the heap table",
    ),
    "corrupt-freelist": (
        "freelist-live-disjointness",
        "paranoid walker flags a free cell aliasing a live object (or an "
        "orphan bump record); hardened allocator fences it on reuse",
    ),
    "alloc-fail": (
        "allocation-retry-ladder",
        "armed refusal is consumed by the GC/grow retry ladder, no OOM escapes",
    ),
    "raise-reaction": (
        "engine-containment",
        "engine degradation counter moves; the raise never propagates",
    ),
    "raise-sink": (
        "sink-circuit-breaker",
        "telemetry counts sink errors and trips the breaker",
    ),
    "raise-snapshot": (
        "snapshot-containment",
        "collector drops the capture and counts a snapshot failure",
    ),
    "conn-drop": (
        "stream-severance-isolation",
        "victim session records the dropped stream; bystanders bit-identical",
    ),
    "session-kill": (
        "session-eviction-isolation",
        "victim ends 'killed' via typed eviction; budget fully released",
    ),
}

@dataclass
class CoverageMatrix:
    """Aggregated fault → invariant detection evidence across chaos cells."""

    #: fault kind -> list of "cell-label: evidence" strings.
    evidence: dict = field(
        default_factory=lambda: {kind: [] for kind in FAULT_INVARIANTS}
    )

    def add(self, kind: str, cell_label: str, detail: str) -> None:
        self.evidence.setdefault(kind, []).append(f"{cell_label}: {detail}")

    def merge_cell(self, cell_label: str, detections: dict) -> None:
        for kind, detail in detections.items():
            self.add(kind, cell_label, detail)

    def covered(self, kind: str) -> bool:
        return bool(self.evidence.get(kind))

    def missing(self) -> list:
        return [kind for kind in FAULT_INVARIANTS if not self.covered(kind)]

    @property
    def ok(self) -> bool:
        return not self.missing()

    def render(self) -> str:
        lines = ["fault → invariant coverage:"]
        width = max(len(kind) for kind in FAULT_INVARIANTS)
        for kind in FAULT_INVARIANTS:
            invariant, _how = FAULT_INVARIANTS[kind]
            hits = self.evidence.get(kind, [])
            status = f"covered x{len(hits)}" if hits else "NOT COVERED"
            lines.append(f"  {kind:<{width}}  {invariant:<28} {status}")
            if hits:
                lines.append(f"  {'':<{width}}    e.g. {hits[0]}")
        if self.ok:
            lines.append(
                f"  all {len(FAULT_INVARIANTS)} fault kinds caught by a named invariant"
            )
        else:
            lines.append(f"  UNCOVERED fault kind(s): {', '.join(self.missing())}")
        return "\n".join(lines)


def detect_cell(result, probe_problems: list, pending_refusals: int) -> dict:
    """Detection evidence for one heap chaos cell.

    ``result`` is the populated :class:`repro.faults.chaos.CellResult`
    (recovery counters, degradations, violation discriminators already
    read); ``probe_problems`` is the read-only paranoid probe output taken
    after ``apply_remaining`` and *before* the recovery collection — the
    walker seeing the damage is itself detection evidence.
    """
    found: dict = {}
    recovery = result.recovery
    degradations = result.degradations

    cleared = recovery.get("stale_bits_cleared", 0)
    probe_mark = [p for p in probe_problems if "MARK bit" in p or "OWNED bit" in p]
    if cleared or probe_mark:
        found["flip-mark"] = (
            f"header-hygiene: sentinel cleared {cleared} stale bit(s)"
            if cleared
            else f"header-hygiene: walker flagged {probe_mark[0]!r}"
        )

    if result.injected_dead_violations:
        found["flip-dead"] = (
            "assert-dead-verdict: "
            f"{result.injected_dead_violations} site=None DEAD violation(s)"
        )

    if result.injected_unshared_violations:
        found["flip-unshared"] = (
            "assert-unshared-verdict: "
            f"{result.injected_unshared_violations} site=None UNSHARED violation(s)"
        )

    fenced_refs = recovery.get("refs_fenced", 0)
    probe_dangle = [p for p in probe_problems if "dangling" in p]
    if fenced_refs or probe_dangle:
        found["dangle-ref"] = (
            f"reference-closure: sentinel nulled {fenced_refs} dangling slot(s)"
            if fenced_refs
            else f"reference-closure: walker flagged {probe_dangle[0]!r}"
        )

    probe_alias = [
        p for p in probe_problems if "aliases a live object" in p or "orphan bump" in p
    ]
    fenced_cells = recovery.get("cells_fenced", 0)
    if probe_alias:
        found["corrupt-freelist"] = (
            f"freelist-live-disjointness: walker flagged {probe_alias[0]!r}"
        )
    elif fenced_cells:
        found["corrupt-freelist"] = (
            f"freelist-live-disjointness: allocator fenced {fenced_cells} "
            "aliased cell(s) on reuse"
        )

    if "alloc-fail" in result.kinds_applied and pending_refusals == 0:
        oom = recovery.get("oom_recoveries", 0)
        grew = recovery.get("heap_growths", 0)
        found["alloc-fail"] = (
            "allocation-retry-ladder: armed refusal consumed "
            f"(oom_recoveries={oom}, heap_growths={grew}), no OOM escaped"
        )

    engine_degr = recovery.get("engine_degradations", 0) + degradations.get("engine", 0)
    if engine_degr:
        found["raise-reaction"] = (
            f"engine-containment: {engine_degr} engine degradation(s), raise contained"
        )

    if result.sink_errors or degradations.get("sink", 0):
        found["raise-sink"] = (
            f"sink-circuit-breaker: {result.sink_errors} sink error(s) absorbed"
        )

    snap_failures = recovery.get("snapshot_failures", 0) + degradations.get(
        "snapshot", 0
    )
    if snap_failures:
        found["raise-snapshot"] = (
            f"snapshot-containment: {snap_failures} capture failure(s) dropped"
        )

    return found


def detect_tenant_cell(result, victim) -> dict:
    """Detection evidence for the service-layer tenant-isolation cell."""
    found: dict = {}
    if victim.connection_dropped:
        found["conn-drop"] = (
            "stream-severance-isolation: victim stream severed, "
            "bystanders bit-identical"
        )
    if victim.outcome == "killed":
        found["session-kill"] = (
            "session-eviction-isolation: victim evicted as 'killed', "
            "admission budget fully released"
        )
    return found
