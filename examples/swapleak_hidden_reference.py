#!/usr/bin/env python
"""The §3.2.3 SwapLeak case study: the hidden inner-class reference.

A Sun Developer Network user could not understand why their program ran out
of memory: they swapped the ``rep`` fields of two SObjects and expected the
fresh SObject to be collected.  GC assertions display the hidden
``this$0`` reference a non-static inner class carries.  Run:

    python examples/swapleak_hidden_reference.py
"""

from repro import VirtualMachine
from repro.workloads.swapleak import SwapLeakConfig, run_swapleak


def main():
    print("SwapLeak with the non-static inner class (the user's code):")
    vm = VirtualMachine(heap_bytes=16 << 20)
    result = run_swapleak(vm, SwapLeakConfig(array_size=16, swaps=16))
    print(f"  swaps={result.swaps} asserted dead={result.asserted} "
          f"violations={result.violations}")
    print()
    for row in vm.engine.log.violations[0].render().splitlines():
        print("  " + row)
    print(
        "\n  -> 'An SObject in the array has a reference to an instance of\n"
        "     the Rep inner class, but that Rep instance maintains a pointer\n"
        "     to a different SObject, one that we expected to be unreachable.'\n"
        "     The SObject$Rep hop in the path IS the hidden reference.\n"
    )

    print("repaired: a static inner class (no hidden enclosing-instance ref):")
    vm = VirtualMachine(heap_bytes=16 << 20)
    result = run_swapleak(
        vm, SwapLeakConfig(array_size=16, swaps=16, static_rep=True)
    )
    print(f"  swaps={result.swaps} asserted dead={result.asserted} "
          f"violations={result.violations}")
    print("  every swapped-out SObject died as the user expected.")


if __name__ == "__main__":
    main()
