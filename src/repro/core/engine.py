"""The assertion engine: the collector-side half of GC assertions.

This is the component the paper adds to Jikes RVM's collector.  It plugs
into the hook points every collector exposes (see
:class:`repro.gc.base.AssertionEngineProtocol`) and piggybacks all checking
on the normal tracing work:

* ``gc_begin``    — reset per-GC state (per-class instance counts).
* ``pre_mark``    — the §2.5.2 ownership phase (or the naive ablation).
* ``on_first_encounter``  — dead-bit check, unowned-ownee check, and
  per-class instance counting, all on the already-hot header word.
* ``on_repeat_encounter`` — the unshared-bit check ("objects that are
  encountered more than once, i.e. whose mark bits are already set").
* ``post_mark``   — instance-limit checks ("at the end of GC, we iterate
  through our list of tracked types") and FORCE reactions, which must null
  incoming references *before* the sweep reclaims the victims.
* ``gc_end``      — metadata purging for reclaimed objects ("we must remove
  each unreachable ownee after a GC"), violation logging, and HALT
  reactions.

Violations are collected during the trace and dispatched at the end of the
collection, when the heap is consistent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core import lifetime
from repro.core.ownership import run_naive_ownership_check, run_ownership_phase
from repro.core.reactions import Reaction, ReactionPolicy
from repro.core.registry import AssertionRegistry, OwnerRecord
from repro.core.reporting import AssertionKind, HeapPath, Violation, ViolationLog
from repro.errors import AssertionViolationHalt, ConfigurationError, EngineDegraded
from repro.heap import header as hdr
from repro.heap.object_model import HeapObject

if TYPE_CHECKING:
    from repro.gc.base import Collector
    from repro.gc.tracer import Tracer
    from repro.runtime.classes import ClassRegistry
    from repro.runtime.vm import VirtualMachine


class AssertionEngine:
    """Checks registered GC assertions during each collection."""

    def __init__(
        self,
        classes: "ClassRegistry",
        policy: Optional[ReactionPolicy] = None,
        ownership_mode: str = "two-phase",
        check_budget: Optional[int] = None,
    ):
        if ownership_mode not in ("two-phase", "naive"):
            raise ConfigurationError(f"unknown ownership mode {ownership_mode!r}")
        if check_budget is not None and check_budget < 1:
            raise ConfigurationError(f"check_budget must be positive, got {check_budget}")
        self.classes = classes
        self.registry = AssertionRegistry()
        self.policy = policy or ReactionPolicy()
        self.log = ViolationLog()
        self.ownership_mode = ownership_mode
        self.vm: Optional["VirtualMachine"] = None
        self._gc_number = 0
        self._pending: list[Violation] = []
        self._force_victims: list[int] = []
        #: Optional cap on per-pause assertion checks; exceeding it degrades
        #: checking for the rest of that collection (never-stall-the-GC rule).
        self.check_budget = check_budget
        self._checks_this_gc = 0
        #: GC number whose checks are disabled (degraded); -1 = none.  The
        #: comparison-based form (rather than a boolean) survives a recovery
        #: retrace of the *same* collection and re-arms automatically when
        #: the next collection bumps the number.
        self._degraded_gc = -1
        self.degraded_events: list[EngineDegraded] = []
        #: Owner records whose phase-1 scan marked their own owner through a
        #: back edge this collection; ``post_mark`` re-judges them against
        #: true root reachability (see :func:`repro.core.ownership.run_ownership_phase`).
        self._self_sustained: list[tuple[OwnerRecord, list[int]]] = []

    @property
    def degraded(self) -> bool:
        """True while checks are disabled for the current collection."""
        return self._degraded_gc == self._gc_number

    def note_degraded(self, phase: str, exc: Optional[BaseException] = None, reason: str = "") -> None:
        """Disable checking for the rest of this GC and record why.

        The never-propagate rule: an engine or reaction exception must not
        take down the collection, so the caller swallows it and routes it
        here.  Checks re-arm on the next pause (gc number comparison).
        """
        already = self._degraded_gc == self._gc_number
        self._degraded_gc = self._gc_number
        if already:
            return
        detail = reason or (f"{type(exc).__name__}: {exc}" if exc is not None else "unknown")
        event = EngineDegraded(detail, phase=phase, gc_number=self._gc_number)
        self.degraded_events.append(event)
        vm = self.vm
        if vm is None:
            return
        collector = vm.collector
        recovery = getattr(collector, "recovery", None)
        if recovery is not None:
            recovery.engine_degradations += 1
        telemetry = vm.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.record_degradation("engine", f"{phase}: {detail}", seq=self._gc_number)
        spans = collector.span_tracer
        if spans is not None:
            spans.instant(
                "engine_degraded",
                cat="assertion",
                phase=phase,
                gc=self._gc_number,
                reason=detail,
            )

    def _budget_spent(self) -> bool:
        """Count one check against the per-pause budget; True once blown."""
        self._checks_this_gc += 1
        if self.check_budget is not None and self._checks_this_gc > self.check_budget:
            self.note_degraded(
                "budget",
                reason=f"per-pause check budget of {self.check_budget} exceeded",
            )
            return True
        return False

    # ------------------------------------------------------------------ hooks

    def gc_begin(self, collector: "Collector") -> None:
        self._gc_number = collector.stats.collections
        self._pending = []
        self._force_victims = []
        self._checks_this_gc = 0
        self._self_sustained = []
        self.classes.reset_instance_counts()

    def pre_mark(self, collector: "Collector", tracer: "Tracer") -> None:
        if not self.registry.owners:
            return
        if self.ownership_mode == "two-phase":
            run_ownership_phase(self, collector)
        else:
            run_naive_ownership_check(self, collector)

    #: Specialized drains may inline this engine's per-object bookkeeping
    #: (header-bit check counters, instance counting) into the mark loop and
    #: call the ``*_slow`` hooks only when a header bit shows actual
    #: assertion work — the checks then truly piggyback on marking.
    INLINE_HEADER_CHECKS = True

    def on_first_encounter_slow(self, obj: HeapObject, tracer: Optional["Tracer"], parent) -> None:
        """Violation checks for a first encounter whose header word matched
        ``DEAD_BIT | OWNEE_BIT``.  The inlining caller owns the check
        counters and the instance-count bookkeeping."""
        if self._degraded_gc == self._gc_number or self._budget_spent():
            return
        status = obj.status
        if status & hdr.DEAD_BIT:
            self._dead_violation(obj, tracer)
        if (status & hdr.OWNEE_BIT) and not (status & hdr.OWNED_BIT):
            self._unowned_violation(obj, tracer)

    def on_repeat_encounter_slow(self, obj: HeapObject, tracer: Optional["Tracer"], parent) -> None:
        """Unshared violation for a repeat encounter with ``UNSHARED_BIT`` set."""
        if self._degraded_gc == self._gc_number or self._budget_spent():
            return
        self._unshared_violation(obj, tracer, parent)

    def on_first_encounter(self, obj: HeapObject, tracer: Optional["Tracer"], parent) -> None:
        """First GC encounter: the object was just marked."""
        if self._degraded_gc == self._gc_number or self._budget_spent():
            return
        stats = tracer.stats if tracer is not None else None
        if stats is not None:
            stats.header_bit_checks += 1
        status = obj.status
        if status & hdr.DEAD_BIT:
            self._dead_violation(obj, tracer)
        if (status & hdr.OWNEE_BIT) and not (status & hdr.OWNED_BIT):
            self._unowned_violation(obj, tracer)
        cls = obj.cls
        if cls.instance_limit is not None:
            cls.instance_count += 1
            if stats is not None:
                stats.instance_count_increments += 1

    def phase1_visit(self, obj: HeapObject, record: OwnerRecord) -> None:
        """First encounter during the ownership phase.

        Runs the same header-word duties as ``on_first_encounter``, except
        unowned-ownee detection (phase 1 is what *establishes* ownedness)
        and full-path reporting (the ownership scan keeps no path).
        """
        if self._degraded_gc == self._gc_number or self._budget_spent():
            return
        status = obj.status
        if status & hdr.DEAD_BIT:
            path = HeapPath.unavailable(
                f"(reached during ownership scan from owner {record.owner_address:#x})"
            )
            self._dead_violation(obj, None, path=path)
        cls = obj.cls
        if cls.instance_limit is not None:
            cls.instance_count += 1

    def on_repeat_encounter(self, obj: HeapObject, tracer: Optional["Tracer"], parent) -> None:
        """Mark bit already set: a second incoming reference (§2.5.1)."""
        if self._degraded_gc == self._gc_number or self._budget_spent():
            return
        if tracer is not None:
            tracer.stats.header_bit_checks += 1
        if obj.status & hdr.UNSHARED_BIT:
            self._unshared_violation(obj, tracer, parent)

    def note_self_sustained(self, record: OwnerRecord, touched: list[int]) -> None:
        """Phase 1 marked ``record``'s own owner via a back edge; re-judge it."""
        self._self_sustained.append((record, touched))

    def _demote_self_sustained(self, collector: "Collector") -> None:
        """Unmark owners (and their dead region marks) that only their own
        ownership scan kept alive.

        A back edge inside an owned region means phase 1 marks the owner
        from its own registry record.  If the owner is not actually root
        reachable, that mark must not survive: the region would re-mark
        itself every collection and never be reclaimed.  One true-liveness
        walk (roots plus every *other* owner's region seeds, so the
        acknowledged one-collection float of other dying owners is
        respected) decides; marks of the judged regions that the walk
        cannot justify are cleared before sweep.  Any object that stays
        marked is itself walk-reachable, so all of its children are too —
        clearing never creates a dangling reference.  Cost is paid only on
        collections where a back edge actually hit an owner.
        """
        from repro.heap.layout import NULL as _NULL

        pending = self._self_sustained
        if not pending:
            return
        self._self_sustained = []
        heap = collector.heap
        judged = {record.owner_address for record, _ in pending}
        seeds: list[int] = [address for _desc, address in collector.vm.root_entries()]
        for record in self.registry.owner_records():
            if record.owner_address in judged:
                continue
            owner = heap.maybe(record.owner_address)
            if owner is not None and not owner.is_freed:
                seeds.extend(owner.reference_slots())
        reachable: set[int] = set()
        stack = [a for a in seeds if a != _NULL and heap.contains(a)]
        while stack:
            address = stack.pop()
            if address in reachable:
                continue
            reachable.add(address)
            for child in heap.get(address).reference_slots():
                if child != _NULL and child not in reachable and heap.contains(child):
                    stack.append(child)
        demoted: set[int] = set()
        for record, touched in pending:
            if record.owner_address in reachable:
                continue
            for address in [record.owner_address, *touched]:
                if address in reachable:
                    continue
                obj = heap.maybe(address)
                if obj is not None and not obj.is_freed:
                    obj.clear(hdr.MARK_BIT)
                    demoted.add(address)
        if demoted:
            # Phase 1 staged violations (assert-dead, assert-unshared) for
            # objects this walk just proved garbage; retract them before
            # dispatch — a dead object reached only from a dead region is
            # not a violation of anything.
            kept = [v for v in self._pending if v.address not in demoted]
            collector.stats.violations_detected -= len(self._pending) - len(kept)
            self._pending = kept

    def post_mark(self, collector: "Collector", tracer: "Tracer") -> None:
        self._demote_self_sustained(collector)
        self._check_instance_limits(collector)
        self._resolve_reactions()
        if self._force_victims:
            lifetime.force_reclaim(collector, self.vm, self._force_victims)

    def gc_end(self, collector: "Collector", freed: set[int]) -> None:
        """Purge + finalize, for collectors where no freed address can have
        been reused before this point (MarkSweep: non-moving; SemiSpace:
        to-space addresses are disjoint from the freed from-space ones)."""
        self.purge(freed)
        self.finalize(collector)

    def purge(self, freed: set[int]) -> None:
        """Metadata hygiene: drop every registry entry keyed by a freed
        address.  MUST run before any freed address can be recycled — the
        generational full-heap collection promotes survivors into cells
        freed by the same sweep, so it purges between sweeping and
        promotion (see GenerationalCollector.collect)."""
        purge_info = self.registry.purge_freed(freed)
        collector = self.vm.collector if self.vm is not None else None
        self._process_owner_deaths(collector, purge_info["dead_owners"])

    def finalize(self, collector: "Collector") -> None:
        """Per-GC accounting and violation dispatch (may raise on HALT)."""
        ownees = self.registry.live_ownee_count()
        collector.stats.ownees_checked += ownees
        spans = collector.span_tracer
        if spans is not None:
            # One per-GC "everything registered was checked" marker: the
            # paper's guarantee is that a full collection checks all armed
            # assertions, and this is that guarantee's trace footprint.
            spans.instant(
                "assertion_checked",
                cat="assertion",
                gc=self._gc_number,
                pending_dead=len(self.registry.dead_sites),
                ownees=ownees,
                violations=len(self._pending),
            )
        self._dispatch()

    def apply_forwarding(self, fwd: dict[int, int]) -> None:
        self.registry.apply_forwarding(fwd)

    # ----------------------------------------------------------- violations

    def _violation(
        self,
        kind: AssertionKind,
        message: str,
        obj: Optional[HeapObject] = None,
        site: Optional[str] = None,
        path: Optional[HeapPath] = None,
        details: Optional[dict] = None,
    ) -> Violation:
        violation = Violation(
            kind,
            message,
            obj=obj,
            site=site,
            path=path,
            gc_number=self._gc_number,
            details=details,
        )
        self._pending.append(violation)
        if self.vm is not None:
            self.vm.collector.stats.violations_detected += 1
        return violation

    def _dead_violation(
        self,
        obj: HeapObject,
        tracer: Optional["Tracer"],
        path: Optional[HeapPath] = None,
    ) -> None:
        site = self.registry.dead_sites.get(obj.address)
        if path is None:
            if tracer is not None:
                path = HeapPath.from_tracer(tracer, obj)
            else:
                path = HeapPath.unavailable("(no path available)")
        kind = site.kind if site is not None else AssertionKind.DEAD
        self._violation(
            kind,
            "an object that was asserted dead is reachable.",
            obj=obj,
            site=site.label if site is not None else None,
            path=path,
        )

    def _unowned_violation(self, obj: HeapObject, tracer: Optional["Tracer"]) -> None:
        owner_address = self.registry.owner_of(obj.address)
        path = HeapPath.from_tracer(tracer, obj) if tracer is not None else None
        owner_desc = f"{owner_address:#x}" if owner_address is not None else "<unknown>"
        self._violation(
            AssertionKind.OWNED_BY,
            "an object is reachable but not through its asserted owner.",
            obj=obj,
            site=f"owner {owner_desc}",
            path=path,
            details={"owner_address": owner_address},
        )

    def _unshared_violation(
        self, obj: HeapObject, tracer: Optional["Tracer"], parent
    ) -> None:
        # §2.7: "for assert-unshared, we have no way of knowing which path is
        # the correct one [...] We can print the second path."
        path = HeapPath.from_tracer(tracer, obj) if tracer is not None else None
        via = f" (second reference from {parent.cls.name})" if parent is not None else ""
        self._violation(
            AssertionKind.UNSHARED,
            f"an object that was asserted unshared has multiple incoming references{via}.",
            obj=obj,
            site=self.registry.unshared_sites.get(obj.address),
            path=path,
        )

    def report_ownership_misuse(self, obj: HeapObject, record: OwnerRecord) -> None:
        owner_address = self.registry.owner_of(obj.address)
        owner_desc = (
            f"{owner_address:#x}" if owner_address is not None else "<unregistered>"
        )
        self._violation(
            AssertionKind.OWNERSHIP_MISUSE,
            "improper use of assert-ownedby: owner regions overlap "
            f"(object owned by {owner_desc} reached from owner "
            f"{record.owner_address:#x}).",
            obj=obj,
            details={
                "owner_address": owner_address,
                "reached_from_owner": record.owner_address,
            },
        )

    def _check_instance_limits(self, collector: "Collector") -> None:
        for cls in self.classes.tracked_types:
            limit = cls.instance_limit
            if limit is not None and cls.instance_count > limit:
                # §2.7: for assert-instances "the problem paths may have been
                # traced earlier" — no path is available.
                self._violation(
                    AssertionKind.INSTANCES,
                    f"instance limit exceeded for {cls.name}: "
                    f"{cls.instance_count} live instances, limit {limit}.",
                    details={"type": cls.name, "count": cls.instance_count, "limit": limit},
                )

    def _process_owner_deaths(self, collector: Optional["Collector"], dead_owners: list[int]) -> None:
        """Drop records whose owner was reclaimed.

        The owner's surviving ownees are *not* reported: they are usually
        floating garbage — the ownership phase marked them from the (dying)
        owner, so they survive exactly one extra collection (§2.5.2's
        acknowledged memory-pressure effect) and are reclaimed at the next
        GC.  The record must be dropped either way, because the free-list
        recycles the owner's address.  Genuine "outlives its owner" bugs are
        caught while the owner is still alive, as unowned-ownee violations —
        which is the paper's actual detection mechanism.
        """
        heap = collector.heap if collector is not None else None
        for owner_address in dead_owners:
            for ownee_address in self.registry.drop_owner(owner_address):
                obj = heap.maybe(ownee_address) if heap is not None else None
                if obj is not None:
                    obj.clear(hdr.OWNEE_BIT)

    # ------------------------------------------------------------- dispatch

    def _resolve_reactions(self) -> None:
        for violation in self._pending:
            if violation.reaction is not None:
                continue
            try:
                reaction = self.policy.reaction_for(violation)
            except (AssertionViolationHalt, ConfigurationError):
                # Halts and usage errors (e.g. a handler forcing a
                # non-forcible kind) are deliberate, not faults.
                raise
            except Exception as exc:
                # Never-propagate rule: a raising reaction handler must not
                # take down the collection.  Degrade, then fall back to the
                # per-kind/default policy with user handlers bypassed.
                self.note_degraded("reaction", exc)
                reaction = self.policy._per_kind.get(violation.kind, self.policy.default)
            violation.reaction = reaction.value
            if reaction is Reaction.FORCE and violation.address is not None:
                self._force_victims.append(violation.address)

    def _dispatch(self) -> None:
        self._resolve_reactions()
        pending, self._pending = self._pending, []
        telemetry = self.vm.telemetry if self.vm is not None else None
        if telemetry is not None and not telemetry.enabled:
            telemetry = None
        spans = self.vm.collector.span_tracer if self.vm is not None else None
        halt: Optional[Violation] = None
        for violation in pending:
            self.log.record(violation)
            if telemetry is not None:
                telemetry.record_violation(violation)
            if spans is not None:
                spans.instant(
                    "assertion_violated",
                    cat="assertion",
                    kind=violation.kind.value,
                    site=violation.site,
                    reaction=violation.reaction,
                )
            if violation.reaction == Reaction.HALT.value and halt is None:
                halt = violation
        if halt is not None:
            # A HALT aborts the collection before the VM's gc-observers run,
            # which would silently skip an on_violation snapshot capture —
            # the one report the user is about to read.  Run the policy's
            # violation trigger now so the halt message carries the retained
            # size and dominator chain; diagnosis must never mask the halt.
            policy = getattr(self.vm, "snapshot_policy", None)
            if policy is not None and getattr(policy, "on_violation", False):
                try:
                    policy._after_gc(self.vm, set())
                except Exception:
                    pass
            raise AssertionViolationHalt(halt)
