"""Benchmark harness: §3.1.1 methodology and figure regeneration."""

from repro.bench.methodology import (
    Config,
    Measurement,
    OverheadRow,
    Sample,
    compare,
    confidence_interval_90,
    geometric_mean,
    mean,
    run_sample,
    run_trial,
)
from repro.bench.figures import (
    ASSERTED_BENCHMARKS,
    PAPER_REFERENCE,
    FigureResult,
    figure2_runtime_infrastructure,
    figure3_gctime_infrastructure,
    figure4_runtime_withassertions,
    figure5_gctime_withassertions,
    figure5_vs_infrastructure,
    infrastructure_figures,
    withassertions_figures,
)

__all__ = [
    "Config",
    "Measurement",
    "OverheadRow",
    "Sample",
    "compare",
    "confidence_interval_90",
    "geometric_mean",
    "mean",
    "run_sample",
    "run_trial",
    "ASSERTED_BENCHMARKS",
    "PAPER_REFERENCE",
    "FigureResult",
    "figure2_runtime_infrastructure",
    "figure3_gctime_infrastructure",
    "figure4_runtime_withassertions",
    "figure5_gctime_withassertions",
    "figure5_vs_infrastructure",
    "infrastructure_figures",
    "withassertions_figures",
]
