"""MiniJ: a small class-based language running on the managed runtime.

Pipeline: :mod:`lexer` → :mod:`parser` → :mod:`compiler` (AST → stack
bytecode, classes loaded into the VM) → :mod:`interpreter` (frames are GC
roots; ``gcAssert*`` builtins expose the paper's assertion interface to
programs).
"""

from repro.interp.bytecode import Function, Instr, Op
from repro.interp.compiler import CompiledProgram, compile_program
from repro.interp.interpreter import Interpreter, Ref, run_source
from repro.interp.lexer import Lexer, Token, TokenKind, tokenize
from repro.interp.parser import Parser, parse

__all__ = [
    "Function",
    "Instr",
    "Op",
    "CompiledProgram",
    "compile_program",
    "Interpreter",
    "Ref",
    "run_source",
    "Lexer",
    "Token",
    "TokenKind",
    "tokenize",
    "Parser",
    "parse",
]
