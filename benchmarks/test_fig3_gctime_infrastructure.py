"""Figure 3: GC-time overhead of the GC-assertion infrastructure.

Paper: "Overall GC time increases by 13.36% (the geometric mean) and 30% in
the worst case (bloat)."

Shape claims: GC time is where the infrastructure cost lives — per-object
header checks and path tagging run inside the trace loop — so the GC-time
overhead must be positive in aggregate and clearly larger than the total
run-time overhead of Figure 2.
"""

from __future__ import annotations

from benchmarks.conftest import trials
from repro.bench import infrastructure_figures

from benchmarks.test_fig2_runtime_infrastructure import BENCHMARKS, figures


def test_fig3_gctime_overhead(once, figure_report):
    figs = once(figures)
    fig3 = figs["fig3"]
    fig2 = figs["fig2"]
    figure_report.append(fig3.render())
    assert len(fig3.rows) == len(BENCHMARKS)
    # Shape: paying per-object hook costs inside the trace loop slows GC.
    assert fig3.geomean_overhead_pct > 0
    # Shape: the figure-2 vs figure-3 relationship — GC-time overhead
    # dominates total-time overhead (13.36% vs 2.75% in the paper).
    assert fig3.geomean_overhead_pct > fig2.geomean_overhead_pct


def test_fig3_gc_time_is_measured(once):
    figs = once(figures)
    for row in figs["fig3"].rows:
        assert row.base_mean > 0, f"{row.benchmark} must actually collect"
        assert row.other_mean > 0
