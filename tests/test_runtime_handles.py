"""Handles: typed field access, arrays, rooting, use-after-free."""

import pytest

from repro.errors import TypeFault, UseAfterFreeError
from repro.heap.object_model import FieldKind


@pytest.fixture
def pair_class(vm):
    return vm.define_class(
        "Pair",
        [("left", FieldKind.REF), ("right", FieldKind.REF), ("tag", FieldKind.STR)],
    )


class TestFieldAccess:
    def test_scalar_roundtrip(self, vm, pair_class):
        with vm.scope():
            p = vm.new(pair_class)
            p["tag"] = "hello"
            assert p["tag"] == "hello"

    def test_ref_roundtrip_returns_handle(self, vm, pair_class):
        with vm.scope():
            a = vm.new(pair_class)
            b = vm.new(pair_class)
            a["left"] = b
            assert a["left"] == b

    def test_null_ref_reads_as_none(self, vm, pair_class):
        with vm.scope():
            p = vm.new(pair_class)
            assert p["left"] is None

    def test_assign_none_clears(self, vm, pair_class):
        with vm.scope():
            a = vm.new(pair_class)
            b = vm.new(pair_class)
            a["left"] = b
            a["left"] = None
            assert a["left"] is None

    def test_kwargs_initialization(self, vm, pair_class):
        with vm.scope():
            p = vm.new(pair_class, tag="init")
            assert p["tag"] == "init"

    def test_scalar_into_ref_slot_rejected(self, vm, pair_class):
        with vm.scope():
            p = vm.new(pair_class)
            with pytest.raises(TypeFault):
                p["left"] = 42

    def test_handle_into_scalar_slot_rejected(self, vm, pair_class):
        with vm.scope():
            p = vm.new(pair_class)
            q = vm.new(pair_class)
            with pytest.raises(TypeFault):
                p["tag"] = q

    def test_unknown_field_raises(self, vm, pair_class):
        with vm.scope():
            p = vm.new(pair_class)
            with pytest.raises(Exception):
                p["nope"]


class TestArrays:
    def test_ref_array_indexing(self, vm, pair_class):
        with vm.scope():
            arr = vm.new_array(pair_class, 3)
            p = vm.new(pair_class)
            arr[0] = p
            assert arr[0] == p
            assert arr[1] is None
            assert len(arr) == 3

    def test_scalar_array(self, vm):
        with vm.scope():
            arr = vm.new_array(FieldKind.INT, 4)
            arr[2] = 42
            assert arr[2] == 42
            assert arr[0] == 0

    def test_out_of_bounds_rejected(self, vm):
        with vm.scope():
            arr = vm.new_array(FieldKind.INT, 2)
            with pytest.raises(TypeFault):
                arr[2]
            with pytest.raises(TypeFault):
                arr[-1] = 0

    def test_indexing_non_array_rejected(self, vm, pair_class):
        with vm.scope():
            p = vm.new(pair_class)
            with pytest.raises(TypeFault):
                p[0]

    def test_len_of_non_array_rejected(self, vm, pair_class):
        with vm.scope():
            p = vm.new(pair_class)
            with pytest.raises(TypeFault):
                len(p)

    def test_refs_iterator(self, vm, pair_class):
        with vm.scope():
            arr = vm.new_array(pair_class, 2)
            p = vm.new(pair_class)
            arr[1] = p
            items = list(arr.refs())
            assert items[0] is None
            assert items[1] == p


class TestRootingAndLifetime:
    def test_handle_is_not_a_root(self, vm, pair_class):
        with vm.scope():
            p = vm.new(pair_class)
        vm.gc()
        assert not p.is_live

    def test_keep_requires_scope(self, vm, pair_class):
        with vm.scope():
            p = vm.new(pair_class)
        with pytest.raises(TypeFault):
            p.keep()

    def test_keep_roots_in_scope(self, vm, pair_class):
        with vm.scope():
            p = vm.new(pair_class)
            vm.statics.set_ref("tmp", p.address)
        vm.statics.drop_ref("tmp")
        with vm.scope():
            handle = vm.handle(p.obj)
            handle.keep()
            vm.gc()
            assert handle.is_live
        vm.gc()
        assert not handle.is_live

    def test_use_after_free_raises(self, vm, pair_class):
        with vm.scope():
            p = vm.new(pair_class)
        vm.gc()
        with pytest.raises(UseAfterFreeError):
            p["tag"]
        with pytest.raises(UseAfterFreeError):
            p["tag"] = "x"

    def test_storing_freed_handle_rejected(self, vm, pair_class):
        with vm.scope():
            dead = vm.new(pair_class)
        vm.gc()
        with vm.scope():
            live = vm.new(pair_class)
            with pytest.raises(UseAfterFreeError):
                live["left"] = dead


class TestEquality:
    def test_handles_equal_by_object_identity(self, vm, pair_class):
        with vm.scope():
            p = vm.new(pair_class)
            other = vm.handle(p.obj)
            assert p == other
            assert hash(p) == hash(other)

    def test_distinct_objects_unequal(self, vm, pair_class):
        with vm.scope():
            assert vm.new(pair_class) != vm.new(pair_class)

    def test_repr_shows_state(self, vm, pair_class):
        with vm.scope():
            p = vm.new(pair_class)
            assert "Pair" in repr(p)
        vm.gc()
        assert "freed" in repr(p)
