"""Ablation abl-service: the cost of running a tenant through the server.

The service's acceptance bar is bit-identity first, overhead second: a
workload submitted over the wire (``repro-wire/1``) to an in-process
:class:`AssertionService` must produce exactly the same deterministic GC
and assertion counters — and the same violation log — as running it
directly on a :class:`VirtualMachine` with the same configuration.  The
server adds a telemetry sink and a non-perturbing violation handler to
the session VM, plus protocol framing around the run; none of that may
touch collector behaviour.

GC time through the server is gated loosely (the run happens on an
executor thread either way; the delta is scheduling noise, not collector
work).  The counter-identity assertion is the hard gate.
"""

from __future__ import annotations

from benchmarks.conftest import trials
from repro.bench.methodology import confidence_interval_90, mean
from repro.runtime.vm import VirtualMachine
from repro.service import AssertionService, ServiceClient, ServiceConfig
from repro.workloads.suite import build_suite

WORKLOAD = "pseudojbb"

#: GC-time bound for the served leg; generous because the comparison is
#: between two runs of the same collector on different threads.
MAX_GC_TIME_RATIO = 1.5


def _run_direct():
    entry = build_suite()[WORKLOAD]
    vm = VirtualMachine(
        heap_bytes=entry.heap_bytes,
        collector="marksweep",
        assertions=True,
        telemetry=True,
        hardened=True,
        max_heap_bytes=entry.heap_bytes * 2,
    )
    runner = entry.run_with_assertions or entry.run
    runner(vm)
    vm.collector.sweep_all()
    snapshot = vm.stats.snapshot()
    return vm.stats.gc_seconds, snapshot["counters"], vm.violation_lines()


def _run_served(service: AssertionService):
    with ServiceClient("127.0.0.1", service.port) as client:
        client.hello()
        opened = client.open("bench", WORKLOAD)
        assert opened["type"] == "opened", opened
        collected: list[dict] = []
        result = client.submit(opened["session"], collect=collected)
        assert result["type"] == "result", result
        client.close_session(opened["session"])
    assert result["outcome"] == "completed", result
    return result["gc_seconds"], result["counters"], result["violations"]


def test_service_counter_identity_and_overhead(once, figure_report):
    def run():
        direct = [_run_direct() for _ in range(trials())]
        config = ServiceConfig(http_port=None)
        with AssertionService(config) as service:
            served = [_run_served(service) for _ in range(trials())]
        return direct, served

    direct, served = once(run)
    direct_times = [t for t, _c, _v in direct]
    served_times = [t for t, _c, _v in served]
    ratio = mean(served_times) / mean(direct_times)
    figure_report.append(
        f"Ablation abl-service (direct VM vs repro-wire/1 server, '{WORKLOAD}'):\n"
        f"  direct: {mean(direct_times) * 1e3:.1f} ms ±{confidence_interval_90(direct_times) * 1e3:.1f}\n"
        f"  served: {mean(served_times) * 1e3:.1f} ms ±{confidence_interval_90(served_times) * 1e3:.1f}\n"
        f"  ratio:  {ratio:.3f} (asserted <={MAX_GC_TIME_RATIO} for scheduling noise)"
    )
    assert ratio < MAX_GC_TIME_RATIO

    # The hard gate: a tenant run through the server is bit-identical to
    # the same workload run directly — counters and violation log both.
    assert served[0][1] == direct[0][1]
    assert served[0][2] == direct[0][2]


def test_service_run_is_deterministic_across_sessions(once):
    """Two sessions of the same workload agree with each other too."""

    def run():
        config = ServiceConfig(http_port=None)
        with AssertionService(config) as service:
            return _run_served(service), _run_served(service)

    first, second = once(run)
    assert first[1] == second[1]
    assert first[2] == second[2]
