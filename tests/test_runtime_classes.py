"""Class registry: definitions, arrays, instance tracking."""

import pytest

from repro.errors import LayoutError
from repro.heap.object_model import FieldKind
from repro.runtime.classes import OBJECT_CLASS_NAME, ClassRegistry


@pytest.fixture
def registry():
    return ClassRegistry()


class TestDefinition:
    def test_object_class_predefined(self, registry):
        assert OBJECT_CLASS_NAME in registry
        assert registry.object_class.superclass is None

    def test_default_superclass_is_object(self, registry):
        cls = registry.define("C")
        assert cls.superclass is registry.object_class

    def test_superclass_by_name(self, registry):
        registry.define("P", [("x", FieldKind.INT)])
        child = registry.define("C", [("y", FieldKind.REF)], superclass="P")
        assert child.field("x").slot == 0
        assert child.field("y").slot == 1

    def test_duplicate_name_rejected(self, registry):
        registry.define("C")
        with pytest.raises(LayoutError):
            registry.define("C")

    def test_dense_class_ids(self, registry):
        a = registry.define("A")
        b = registry.define("B")
        assert b.class_id == a.class_id + 1
        assert registry.by_id(a.class_id) is a

    def test_unknown_lookup_raises(self, registry):
        with pytest.raises(LayoutError):
            registry.get("Missing")
        assert registry.maybe("Missing") is None

    def test_len_and_iter(self, registry):
        registry.define("A")
        names = [c.name for c in registry]
        assert OBJECT_CLASS_NAME in names and "A" in names
        assert len(registry) == len(names)


class TestArrays:
    def test_reference_array_named_after_element(self, registry):
        cls = registry.define("Order")
        arr = registry.array_of(cls)
        assert arr.name == "Order[]"
        assert arr.is_array
        assert arr.element_kind is FieldKind.REF

    def test_scalar_array(self, registry):
        arr = registry.array_of(FieldKind.INT)
        assert arr.name == "int[]"
        assert arr.element_kind is FieldKind.INT

    def test_array_classes_interned(self, registry):
        cls = registry.define("Order")
        assert registry.array_of(cls) is registry.array_of(cls)


class TestInstanceTracking:
    """The two per-class words of §2.4.1 plus the tracked-types array."""

    def test_track_sets_limit(self, registry):
        cls = registry.define("Singleton")
        registry.track_instances(cls, 1)
        assert cls.instance_limit == 1
        assert cls in registry.tracked_types

    def test_zero_limit_allowed(self, registry):
        cls = registry.define("Banned")
        registry.track_instances(cls, 0)
        assert cls.instance_limit == 0

    def test_negative_limit_rejected(self, registry):
        cls = registry.define("C")
        with pytest.raises(LayoutError):
            registry.track_instances(cls, -1)

    def test_retrack_updates_limit_without_duplicates(self, registry):
        cls = registry.define("C")
        registry.track_instances(cls, 1)
        registry.track_instances(cls, 5)
        assert cls.instance_limit == 5
        assert registry.tracked_types.count(cls) == 1

    def test_untrack(self, registry):
        cls = registry.define("C")
        registry.track_instances(cls, 1)
        registry.untrack_instances(cls)
        assert cls.instance_limit is None
        assert cls not in registry.tracked_types

    def test_reset_instance_counts(self, registry):
        cls = registry.define("C")
        registry.track_instances(cls, 1)
        cls.instance_count = 42
        registry.reset_instance_counts()
        assert cls.instance_count == 0
