"""Unit tests for the ObjectHeap table."""

import pytest

from repro.errors import InvalidAddressError, UseAfterFreeError
from repro.heap import header as hdr
from repro.heap.heap import ObjectHeap
from repro.heap.object_model import ClassDescriptor, FieldKind


@pytest.fixture
def heap():
    return ObjectHeap()


@pytest.fixture
def cls():
    return ClassDescriptor(0, "C", [("x", FieldKind.INT)])


class TestInstall:
    def test_install_and_get(self, heap, cls):
        obj = heap.install(0x1000, cls)
        assert heap.get(0x1000) is obj
        assert len(heap) == 1

    def test_unaligned_address_rejected(self, heap, cls):
        with pytest.raises(InvalidAddressError):
            heap.install(0x1001, cls)

    def test_occupied_address_rejected(self, heap, cls):
        heap.install(0x1000, cls)
        with pytest.raises(InvalidAddressError):
            heap.install(0x1000, cls)

    def test_distinct_identity_hashes(self, heap, cls):
        a = heap.install(0x1000, cls)
        b = heap.install(0x1008, cls)
        assert hdr.hash_of(a.status) != hdr.hash_of(b.status)

    def test_stats_track_allocation(self, heap, cls):
        heap.install(0x1000, cls)
        assert heap.stats.objects_allocated == 1
        assert heap.stats.bytes_allocated == cls.instance_size
        assert heap.stats.objects_live == 1

    def test_allocation_count_per_class(self, heap, cls):
        heap.install(0x1000, cls)
        heap.install(0x1008, cls)
        assert cls.allocation_count == 2


class TestEvict:
    def test_evict_removes_and_poisons(self, heap, cls):
        obj = heap.install(0x1000, cls)
        heap.evict(obj)
        assert obj.is_freed
        assert not heap.contains(0x1000)
        assert heap.stats.objects_live == 0

    def test_get_after_evict_raises(self, heap, cls):
        obj = heap.install(0x1000, cls)
        heap.evict(obj)
        with pytest.raises(InvalidAddressError):
            heap.get(0x1000)

    def test_evict_mismatched_object_rejected(self, heap, cls):
        a = heap.install(0x1000, cls)
        heap.evict(a)
        b = heap.install(0x1000, cls)  # address reused
        with pytest.raises(InvalidAddressError):
            heap.evict(a)  # a is stale; table holds b
        assert heap.get(0x1000) is b


class TestGet:
    def test_null_deref_raises(self, heap):
        with pytest.raises(InvalidAddressError):
            heap.get(0)

    def test_dangling_deref_raises(self, heap):
        with pytest.raises(InvalidAddressError):
            heap.get(0x9000)

    def test_maybe_returns_none_for_missing(self, heap):
        assert heap.maybe(0) is None
        assert heap.maybe(0x9000) is None

    def test_freed_object_reachable_via_stale_table_raises(self, heap, cls):
        obj = heap.install(0x1000, cls)
        obj.set(hdr.FREED_BIT)  # simulate a poisoned object left in the table
        with pytest.raises(UseAfterFreeError):
            heap.get(0x1000)


class TestRelocate:
    def test_relocate_moves_object(self, heap, cls):
        obj = heap.install(0x1000, cls)
        heap.relocate(obj, 0x2000)
        assert obj.address == 0x2000
        assert heap.get(0x2000) is obj
        assert not heap.contains(0x1000)

    def test_relocate_to_occupied_rejected(self, heap, cls):
        a = heap.install(0x1000, cls)
        heap.install(0x2000, cls)
        with pytest.raises(InvalidAddressError):
            heap.relocate(a, 0x2000)

    def test_relocate_unaligned_rejected(self, heap, cls):
        a = heap.install(0x1000, cls)
        with pytest.raises(InvalidAddressError):
            heap.relocate(a, 0x2001)


class TestIteration:
    def test_objects_snapshot(self, heap, cls):
        a = heap.install(0x1000, cls)
        b = heap.install(0x1008, cls)
        snapshot = heap.objects()
        heap.evict(a)  # safe: snapshot is independent
        assert set(snapshot) == {a, b}

    def test_live_bytes(self, heap, cls):
        heap.install(0x1000, cls)
        heap.install(0x1008, cls)
        assert heap.live_bytes() == 2 * cls.instance_size

    def test_live_bytes_counter_matches_slow_walk(self, heap, cls):
        # The O(1) counter must track install/evict/relocate exactly.
        objs = [heap.install(0x1000 + i * 16, cls) for i in range(32)]
        assert heap.live_bytes() == heap.live_bytes_slow()
        for obj in objs[::3]:
            heap.evict(obj)
        assert heap.live_bytes() == heap.live_bytes_slow()
        heap.relocate(objs[1], 0x9000)
        assert heap.live_bytes() == heap.live_bytes_slow()
        for obj in heap.objects():
            heap.evict(obj)
        assert heap.live_bytes() == heap.live_bytes_slow() == 0
