"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``      — package, collector, and suite overview.
* ``demo``      — run the quickstart scenario and print the reports.
* ``figures``   — regenerate Figures 2–5 (``--full`` for the whole suite;
  ``--json-out`` also writes the machine-readable perf record).
* ``bench``     — hot-path perf record: trace/alloc microbenchmarks, the
  eager-vs-lazy sweep pause comparison, and snapshot-capture overhead;
  writes ``BENCH_perf.json`` and exits non-zero if the deterministic work
  counters drift between modes.
* ``verify``    — run a workload on every collector and verify heap
  integrity afterwards (a smoke test for modified collectors).
* ``stats``     — run a workload with telemetry on and report the GC event
  stream, pause percentiles, and per-class census (``--json`` / ``--prom``
  for machine-readable output, ``--jsonl FILE`` to stream events).
* ``snapshot``  — heap snapshots and leak triage: ``capture`` a workload's
  heap, ``analyze`` retained sizes, ``diff`` two snapshots for leak
  candidates, ask ``why`` an object is alive.
* ``trace``     — in-pause span tracing: ``run`` a workload and export a
  Chrome trace_event JSON loadable in Perfetto (``--flame`` adds a
  collapsed-stack flamegraph of mark work by type and alloc site);
  ``report`` prints the per-phase span table and the mark-drain
  piggyback-cost attribution.
* ``top``       — live terminal view of a running workload: pause
  percentiles, sweep debt, census slopes, hottest GC phases.
* ``monitor``   — continuous heap-health monitoring: run a workload under
  MMU/utilization timelines and pause-SLO error budgets with burn-rate
  alerts (``--serve PORT`` exposes ``/metrics`` ``/health`` ``/slo`` over
  HTTP, ``--watch`` repaints a live SLO view, ``--chaos-seed`` injects a
  seeded fault schedule); exits 1 when an alert is firing or a budget is
  exhausted, 2 on bad monitor configuration.
* ``chaos``     — fault-injection soak: run a seeded fault schedule
  (header-bit flips, dangling refs, free-list corruption, allocation
  failure, raising reactions/sinks/snapshots) across the
  (collector × sweep-mode) × workload matrix on hardened VMs and assert
  the crash-consistency contract (``--quick`` for the CI smoke pair).
* ``minij FILE``— run a MiniJ program (with gcAssert* builtins available).

Exit codes (every command): 0 = success, 1 = assertion violations were
detected or a check failed, 2 = usage error (bad arguments or inputs).
"""

from __future__ import annotations

import argparse
import sys

#: Shared --help epilog line; every subcommand states the contract.
_EXIT_CODES = "exit codes: 0 = success, 1 = violations/check failure, 2 = usage error"


def _violations_exit(vm) -> int:
    """The 0-vs-1 half of the exit-code contract."""
    if vm.engine is not None and len(vm.engine.log):
        return 1
    return 0


def _build_vm(**kwargs):
    """VM construction with option-mismatch faults mapped to usage errors.

    Returns ``None`` after printing the complaint (e.g. ``--gc-workers``
    with a collector that has no parallel mark phase); callers exit 2.
    """
    from repro.errors import RuntimeFault
    from repro.runtime.vm import VirtualMachine

    try:
        return VirtualMachine(**kwargs)
    except RuntimeFault as exc:
        print(f"configuration error: {exc}")
        return None


def cmd_info(_args) -> int:
    import repro
    from repro.workloads.suite import build_suite

    print(f"repro {repro.__version__} — GC assertions (PLDI 2009) reproduction")
    print("collectors: marksweep (paper), semispace, generational")
    print("assertions: assert_dead, start_region/assert_alldead, "
          "assert_instances, assert_unshared, assert_ownedby")
    suite = build_suite()
    print(f"benchmark suite ({len(suite)} members):")
    for name, entry in sorted(suite.items()):
        asserted = " [+assertions variant]" if entry.run_with_assertions else ""
        print(f"  {name:12} heap={entry.heap_bytes:>8}B{asserted}")
    return 0


def cmd_demo(_args) -> int:
    """A compact version of examples/quickstart.py."""
    from repro import FieldKind, VirtualMachine

    vm = VirtualMachine(heap_bytes=1 << 20)
    node = vm.define_class("Node", [("next", FieldKind.REF), ("value", FieldKind.INT)])
    with vm.scope():
        head = vm.new(node, value=1)
        tail = vm.new(node, value=2)
        head["next"] = tail
        vm.statics.set_ref("head", head.address)
        vm.assertions.assert_dead(tail, site="demo: after detach")
    vm.gc()
    print("assert_dead on a still-reachable object:")
    print()
    print(vm.assertions.violations.lines[0])
    print()
    head["next"] = None
    vm.gc()
    print(f"after the fix: {vm.assertions.pending_dead()} pending assertions, "
          f"{vm.engine.registry.dead_satisfied} satisfied.")
    print("see examples/quickstart.py for all five assertion kinds.")
    return 0


def cmd_figures(args) -> int:
    from repro.bench import dump_figures, infrastructure_figures, withassertions_figures

    benchmarks = None if args.full else ["antlr", "jess", "xalan", "db", "pseudojbb"]
    infra = infrastructure_figures(trials=args.trials, benchmarks=benchmarks)
    print(infra["fig2"].render())
    print()
    print(infra["fig3"].render())
    print()
    asserted = withassertions_figures(trials=args.trials)
    print(asserted["fig4"].render())
    print()
    print(asserted["fig5"].render())
    if args.json_out:
        path = dump_figures({**infra, **asserted}, args.json_out, trials=args.trials)
        print()
        print(f"machine-readable results written to {path}")
    return 0


def cmd_bench(args) -> int:
    from repro.bench import dump_perf, perf_payload, render_perf

    payload = perf_payload(quick=args.quick)
    print(render_perf(payload))
    if args.json_out:
        path = dump_perf(payload, args.json_out)
        print()
        print(f"machine-readable results written to {path}")
    # Timing is advisory; counter identity is the gate (CI relies on this).
    return 0 if payload["counters_match"] else 1


def cmd_stats(args) -> int:
    """Run one suite workload with telemetry enabled and report it."""
    import json

    from repro.runtime.vm import VirtualMachine
    from repro.telemetry import JsonlSink, render_prometheus
    from repro.workloads.suite import build_suite

    suite = build_suite()
    try:
        entry = suite[args.workload]
    except KeyError:
        print(f"unknown workload {args.workload!r}; pick from {sorted(suite)}")
        return 2
    vm = _build_vm(
        heap_bytes=args.heap or entry.heap_bytes,
        collector=args.collector,
        gc_workers=args.gc_workers,
        paranoid=args.paranoid,
    )
    if vm is None:
        return 2
    if args.jsonl:
        vm.telemetry.add_sink(JsonlSink(args.jsonl))
    runner = entry.run
    if args.assertions and entry.run_with_assertions is not None:
        runner = entry.run_with_assertions
    runner(vm)
    if vm.stats.collections == 0:
        # Nothing triggered a collection, so no event or census sample
        # exists yet; force one.  (After a workload that *did* collect,
        # a forced GC would only overwrite the census with the post-run
        # empty heap.)
        vm.gc("stats: final census")
    vm.telemetry.close()
    if args.json:
        print(json.dumps(vm.telemetry.summary(), indent=2))
    elif args.prom:
        print(render_prometheus(vm.telemetry), end="")
    else:
        print(f"{entry.name} on {vm.collector.describe()}")
        print()
        print(vm.telemetry.render())
    return _violations_exit(vm)


def cmd_verify(args) -> int:
    from repro.gc.verify import verify_heap
    from repro.runtime.vm import VirtualMachine
    from repro.workloads.jbb import JbbConfig, run_pseudojbb

    if args.model_check:
        from repro.verify import run_model_check

        progress = (lambda line: print(f"  {line}", flush=True)) if args.verbose else None
        report = run_model_check(
            max_objects=args.max_objects,
            max_edges=args.max_edges,
            max_roots=args.max_roots,
            progress=progress,
        )
        print(report.render())
        return 0 if report.ok else 1

    failures = 0
    for collector in ("marksweep", "semispace", "generational"):
        vm = VirtualMachine(
            heap_bytes=1 << 20, collector=collector, paranoid=args.paranoid
        )
        run_pseudojbb(
            vm,
            JbbConfig(
                iterations=1,
                transactions_per_iteration=150,
                assert_dead_orders=True,
                assert_ownedby_orders=True,
                gc_per_iteration=True,
            ),
        )
        vm.gc()
        problems = verify_heap(vm, raise_on_error=False)
        status = "OK" if not problems else f"FAILED ({len(problems)} problems)"
        print(f"{collector:12} {status}")
        for problem in problems:
            print(f"    {problem}")
        failures += bool(problems)
    return 1 if failures else 0


# -- trace / top commands ---------------------------------------------------------------


def _resolve_workload_runner(args):
    """Shared --workload resolution: returns ``(runner, label, rc)``.

    ``runner`` is ``None`` (with ``rc == 2``) for an unknown name; the
    pseudo-workload ``swapleak`` gets the same knobs ``snapshot capture``
    exposes so the leak scenario can be traced and watched live too.
    """
    if args.workload == "swapleak":
        from repro.workloads.swapleak import SwapLeakConfig, run_swapleak

        config = SwapLeakConfig(
            array_size=args.array_size,
            swaps=args.swaps,
            static_rep=args.static_rep,
            assert_dead_swapped=args.assertions,
            gc_every_swaps=args.gc_every_swaps,
        )
        if args.heap is None:
            args.heap = 4 << 20
        return (lambda vm: run_swapleak(vm, config)), "swapleak", 0

    from repro.workloads.suite import build_suite

    suite = build_suite()
    try:
        entry = suite[args.workload]
    except KeyError:
        choices = sorted(suite) + ["swapleak"]
        print(f"unknown workload {args.workload!r}; pick from {choices}")
        return None, args.workload, 2
    if args.heap is None:
        # The suite's tuned heap size makes the workload actually collect,
        # so the trace has in-run pauses rather than one forced final GC.
        args.heap = entry.heap_bytes
    runner = entry.run
    if args.assertions and entry.run_with_assertions is not None:
        runner = entry.run_with_assertions
    return runner, entry.name, 0


def cmd_trace_run(args) -> int:
    from repro.runtime.vm import VirtualMachine
    from repro.tracing import SpanTracer, write_chrome_trace, write_flamegraph

    runner, label, rc = _resolve_workload_runner(args)
    if runner is None:
        return rc
    # Mark attribution walks the heap after every mark phase; only pay for
    # it when a flamegraph was requested.
    tracer = SpanTracer(attribute_marks=bool(args.flame))
    vm = _build_vm(
        heap_bytes=args.heap,
        collector=args.collector,
        tracing=tracer,
        gc_workers=args.gc_workers,
        paranoid=args.paranoid,
    )
    if vm is None:
        return 2
    runner(vm)
    if vm.stats.collections == 0:
        vm.gc("trace: final collection")
    summary = write_chrome_trace(
        vm.span_tracer,
        args.out,
        meta={"workload": label, "collector": vm.collector.describe()},
    )
    print(f"workload {label!r} on {vm.collector.describe()}")
    print(
        f"{summary['spans']} spans / {summary['events']} trace events "
        f"-> {summary['path']} ({summary['file_bytes']} bytes)"
    )
    print("open in https://ui.perfetto.dev (or chrome://tracing)")
    if args.flame:
        flame = write_flamegraph(vm.span_tracer, args.flame, weight=args.flame_weight)
        print(
            f"{flame['stacks']} collapsed stacks ({flame['weight']}) "
            f"-> {flame['path']}"
        )
    return _violations_exit(vm)


def cmd_trace_report(args) -> int:
    from repro.runtime.vm import VirtualMachine
    from repro.tracing import (
        aggregate_spans,
        piggyback_report,
        render_piggyback,
        render_span_table,
    )

    runner, label, rc = _resolve_workload_runner(args)
    if runner is None:
        return rc
    vm = _build_vm(
        heap_bytes=args.heap,
        collector=args.collector,
        tracing=True,
        gc_workers=args.gc_workers,
    )
    if vm is None:
        return 2
    runner(vm)
    if vm.stats.collections == 0:
        vm.gc("trace: final collection")
    print(
        f"workload {label!r} on {vm.collector.describe()} — "
        f"{vm.stats.collections} collections"
    )
    print()
    print(render_span_table(aggregate_spans(vm.span_tracer.events), indent="  "))
    print()
    print(render_piggyback(piggyback_report(vm), indent="  "))
    return _violations_exit(vm)


def cmd_trace_serve(args) -> int:
    """Traced mini-load against a self-hosted service + request breakdown."""
    from repro.errors import ConfigurationError
    from repro.service import LoadgenConfig, run_loadgen
    from repro.tracing import render_request_report

    config = LoadgenConfig(
        sessions=args.sessions,
        rate=args.rate,
        seed=args.seed,
        quick=args.quick,
        heap_budget_bytes=args.heap_budget,
        tracing=True,
        trace_out=args.out,
        delivery_lag_slo_s=(
            args.delivery_lag_slo_ms / 1e3
            if args.delivery_lag_slo_ms is not None else None
        ),
    )
    try:
        report = run_loadgen(config)
    except ConfigurationError as exc:
        print(f"trace serve: {exc}")
        return 2
    print(report.render())
    print()
    print(render_request_report(report.requests))
    if report.trace is not None:
        print()
        print(
            f"merged trace: {report.trace['path']} "
            f"({report.trace['events']} events, "
            f"{report.trace['tenant_tracks']} tenant tracks, "
            f"{report.trace['request_lanes']} request lanes)"
        )
        print("open in https://ui.perfetto.dev (or chrome://tracing)")
    return 0 if report.ok else 1


def cmd_top(args) -> int:
    from repro.runtime.vm import VirtualMachine
    from repro.tracing import run_top

    runner, label, rc = _resolve_workload_runner(args)
    if runner is None:
        return rc
    vm = _build_vm(
        heap_bytes=args.heap,
        collector=args.collector,
        tracing=True,
        gc_workers=args.gc_workers,
    )
    if vm is None:
        return 2
    rc = run_top(vm, runner, interval=args.interval, frames=args.frames)
    return rc or _violations_exit(vm)


def cmd_monitor(args) -> int:
    """Run a workload under continuous heap-health monitoring."""
    from repro.errors import ConfigurationError, ReproError, RuntimeFault
    from repro.monitor import (
        MonitorHub,
        MonitorServer,
        default_slos,
        render_monitor_frame,
        run_monitor,
    )
    from repro.runtime.vm import VirtualMachine

    runner, label, rc = _resolve_workload_runner(args)
    if runner is None:
        return rc

    chaotic = args.chaos_seed is not None
    try:
        slos = default_slos(
            pause_p99_s=args.pause_slo_ms / 1e3,
            mmu_floor=args.mmu_floor,
        )
        hub = MonitorHub(slos)
        vm = VirtualMachine(
            heap_bytes=args.heap,
            collector=args.collector,
            # Chaos runs go to the hardened collector with growth headroom,
            # same contract as `repro chaos` (faults are absorbed, not fatal).
            hardened=chaotic,
            max_heap_bytes=args.heap * 2 if chaotic else None,
            monitor=hub,
            gc_workers=args.gc_workers,
        )
    except (ConfigurationError, RuntimeFault, ValueError) as exc:
        print(f"monitor configuration error: {exc}")
        return 2

    if chaotic:
        from repro.faults import FaultInjector, FaultPlan

        plan = FaultPlan.one_of_each(args.chaos_seed)
        workload = runner

        def runner(vm):
            injector = FaultInjector(vm, plan).attach()
            try:
                workload(vm)
                injector.apply_remaining()
                vm.gc("monitor: post-chaos settle")
            except ReproError as exc:
                # Documented degradation outcome, not a monitor failure —
                # the SLO engine judges it via the degradation stream.
                print(f"(workload absorbed a fault: {exc})")
            finally:
                injector.detach()

    server = None
    if args.serve is not None:
        server = MonitorServer(hub, port=args.serve).start()
        print(f"serving /metrics /health /slo at {server.url}")
    try:
        if args.watch:
            rc = run_monitor(
                vm, hub, runner, interval=args.interval, frames=args.frames
            )
        else:
            runner(vm)
            if vm.stats.collections == 0:
                vm.gc("monitor: final collection")
            print(f"workload {label!r} on {vm.collector.describe()}")
            print()
            print(render_monitor_frame(vm, hub, 1, hub.uptime_s()))
            rc = hub.slos.exit_code() if hub.slos is not None else 0
            if rc:
                firing = [r.objective.name for r in hub.slos.firing()]
                spent = [r.objective.name for r in hub.slos.exhausted()]
                print(f"SLO breach: firing={firing} exhausted={spent}")
    finally:
        if server is not None:
            server.stop()
    return rc or _violations_exit(vm)


def cmd_serve(args) -> int:
    """Run the multi-tenant assertion service until interrupted."""
    import signal
    import threading

    from repro.service import AssertionService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        http_port=args.http_port,
        heap_budget_bytes=args.heap_budget,
        max_sessions=args.max_sessions,
        executor_workers=args.workers,
        hardened=not args.no_hardened,
        paranoid=args.paranoid,
    )
    service = AssertionService(config).start()
    print(f"serving repro-wire/1 on {config.host}:{service.port}", flush=True)
    if service.http is not None:
        print(f"serving /metrics /health /slo at {service.http.url}", flush=True)
    print(
        f"admission budget: {config.heap_budget_bytes} heap bytes"
        + (f", {config.max_sessions} sessions max" if config.max_sessions else ""),
        flush=True,
    )

    stop = threading.Event()

    def _graceful(signum, frame):
        stop.set()

    signal.signal(signal.SIGINT, _graceful)
    signal.signal(signal.SIGTERM, _graceful)
    try:
        while not stop.is_set():
            stop.wait(0.5)
    finally:
        service.stop()
        snap = service.admission.snapshot()
        print(
            f"shutdown: {snap['admitted_total']} session(s) admitted, "
            f"{snap['rejected_total']} rejected, peak {snap['peak_sessions']} "
            f"concurrent"
        )
    return 0


def cmd_loadgen(args) -> int:
    """Drive open-loop load at an assertion service."""
    from repro.errors import ConfigurationError
    from repro.service import LoadgenConfig, run_loadgen

    config = LoadgenConfig(
        sessions=args.sessions,
        rate=args.rate,
        seed=args.seed,
        mode=args.mode,
        quick=args.quick,
        host=args.host,
        port=args.port,
        heap_budget_bytes=args.heap_budget,
        trace_out=args.trace_out,
        delivery_lag_slo_s=(
            args.delivery_lag_slo_ms / 1e3
            if args.delivery_lag_slo_ms is not None else None
        ),
    )
    try:
        report = run_loadgen(config)
    except ConfigurationError as exc:
        print(f"loadgen: {exc}")
        return 2
    print(report.render())
    if args.json_out:
        import json

        with open(args.json_out, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    return 0 if report.ok else 1


def cmd_chaos(args) -> int:
    from repro.faults import run_chaos

    report = run_chaos(quick=args.quick, seed=args.seed, paranoid=args.paranoid)
    print(report.render())
    return 0 if report.ok else 1


def cmd_minij(args) -> int:
    from repro.interp.interpreter import Interpreter
    from repro.runtime.vm import VirtualMachine

    with open(args.file) as handle:
        source = handle.read()
    vm = VirtualMachine(heap_bytes=args.heap)
    interp = Interpreter(vm, echo=True)
    interp.load(source)
    interp.run(args.entry)
    if vm.engine is not None and vm.engine.log.lines:
        print()
        print("GC assertion reports:")
        for line in vm.engine.log.lines:
            print(line)
            print()
    return _violations_exit(vm)


# -- snapshot subcommands ---------------------------------------------------------------


def _load_snapshot_or_complain(path: str):
    """Returns (snapshot, 0) or (None, 2); schema drift is a usage error."""
    from repro.snapshot import SnapshotFormatError, load_snapshot

    try:
        return load_snapshot(path), 0
    except (OSError, SnapshotFormatError) as exc:
        print(f"cannot load snapshot {path}: {exc}")
        return None, 2


def cmd_snapshot_capture(args) -> int:
    import os

    from repro.runtime.vm import VirtualMachine
    from repro.snapshot import SnapshotPolicy

    vm = VirtualMachine(heap_bytes=args.heap, collector=args.collector)
    policy = SnapshotPolicy(
        args.out_dir,
        every_n_gcs=args.every_n_gcs,
        on_violation=args.on_violation,
    ).attach(vm)

    if args.workload == "swapleak":
        from repro.workloads.swapleak import SwapLeakConfig, run_swapleak

        run_swapleak(
            vm,
            SwapLeakConfig(
                array_size=args.array_size,
                swaps=args.swaps,
                static_rep=args.static_rep,
                assert_dead_swapped=args.assertions,
                gc_every_swaps=args.gc_every_swaps,
            ),
        )
    else:
        from repro.workloads.suite import build_suite

        suite = build_suite()
        try:
            entry = suite[args.workload]
        except KeyError:
            choices = sorted(suite) + ["swapleak"]
            print(f"unknown workload {args.workload!r}; pick from {choices}")
            return 2
        runner = entry.run
        if args.assertions and entry.run_with_assertions is not None:
            runner = entry.run_with_assertions
        runner(vm)

    written = list(policy.captured)
    if not written:
        # No piggybacked capture happened (the workload never collected, or
        # no --every-n-gcs): guarantee at least one snapshot via a
        # standalone walk of whatever is still rooted.
        final = os.path.join(args.out_dir, "final.jsonl")
        summary = vm.capture_snapshot(final, trigger="manual")
        written.append(final)
        print(
            f"final heap: {summary['objects']} objects, "
            f"{summary['total_bytes']} bytes, {summary['roots']} roots"
        )
    print(f"workload {args.workload!r} on {vm.collector.describe()}")
    print(f"{len(written)} snapshot(s) written to {args.out_dir}:")
    for path in written:
        print(f"  {path}")
    if vm.engine is not None and vm.engine.log.lines:
        print()
        print("GC assertion reports:")
        for line in vm.engine.log.lines:
            print(line)
            print()
    return _violations_exit(vm)


def cmd_snapshot_analyze(args) -> int:
    from repro.snapshot import build_dominator_tree, retained_sizes, top_retained

    snapshot, rc = _load_snapshot_or_complain(args.snapshot)
    if snapshot is None:
        return rc
    tree = build_dominator_tree(snapshot)
    retained = retained_sizes(snapshot, tree)
    meta = snapshot.meta
    print(
        f"snapshot {args.snapshot}: gc#{meta.get('gc_number')} "
        f"({meta.get('collector')}, trigger={meta.get('trigger')})"
    )
    print(
        f"{len(snapshot)} objects, {snapshot.total_bytes} live bytes, "
        f"{len(snapshot.roots)} roots, {len(tree)} reachable"
    )
    types = sorted(
        snapshot.type_summary().items(), key=lambda kv: (-kv[1][1], kv[0])
    )
    print(f"per-type (top {min(args.top, len(types))} by shallow bytes):")
    for name, (count, nbytes) in types[: args.top]:
        print(f"  {name:24} {count:>8} objects {nbytes:>12} bytes")
    rows = top_retained(snapshot, limit=args.top, tree=tree)
    print(f"heaviest objects (top {len(rows)} by retained bytes):")
    for addr, type_name, nbytes in rows:
        print(f"  {type_name:24} @{addr:#x}  retains {nbytes} bytes")
    # Exercised so a malformed tree fails here, not in a later `why` call.
    assert all(addr in retained for addr, _t, _b in rows)
    return 0


def cmd_snapshot_diff(args) -> int:
    from repro.snapshot import diff_snapshots

    first, rc = _load_snapshot_or_complain(args.first)
    if first is None:
        return rc
    last, rc = _load_snapshot_or_complain(args.last)
    if last is None:
        return rc
    diff = diff_snapshots(first, last)
    print(diff.render(limit=args.limit))
    return 0


def cmd_snapshot_why(args) -> int:
    from repro.snapshot import why_alive

    snapshot, rc = _load_snapshot_or_complain(args.snapshot)
    if snapshot is None:
        return rc
    try:
        address = int(args.address, 0)
    except ValueError:
        print(f"not an address: {args.address!r} (use decimal or 0x-hex)")
        return 2
    try:
        answer = why_alive(snapshot, address)
    except KeyError as exc:
        print(exc.args[0])
        return 2
    print(answer.render(show_addresses=not args.types_only))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_command(name: str, help_text: str, example: str):
        return sub.add_parser(
            name,
            help=help_text,
            epilog=f"example: python -m repro {example}\n{_EXIT_CODES}",
            formatter_class=argparse.RawDescriptionHelpFormatter,
        )

    add_command("info", "package and suite overview", "info")
    add_command(
        "demo",
        "run the quickstart scenario (prints a violation on purpose; exits 0)",
        "demo",
    )

    figures = add_command(
        "figures", "regenerate Figures 2-5", "figures --trials 1 --json-out BENCH_figures.json"
    )
    figures.add_argument("--trials", type=int, default=3)
    figures.add_argument("--full", action="store_true")
    figures.add_argument(
        "--json-out",
        metavar="PATH",
        help="also write machine-readable results (e.g. BENCH_figures.json)",
    )

    bench = add_command(
        "bench", "hot-path perf record (BENCH_perf.json)", "bench --quick"
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="reduced sizes/trials for CI smoke runs",
    )
    bench.add_argument(
        "--json-out",
        metavar="PATH",
        default="BENCH_perf.json",
        help="machine-readable results path (default: %(default)s)",
    )

    verify = add_command(
        "verify",
        "heap-integrity smoke test on all collectors (or exhaustive model check)",
        "verify --model-check --max-objects 4",
    )
    verify.add_argument(
        "--paranoid",
        action="store_true",
        help="smoke mode: run the paranoid wellformedness walker around every GC",
    )
    verify.add_argument(
        "--model-check",
        action="store_true",
        help="enumerate every canonical heap shape in scope and prove "
        "Soundness1/Soundness2/Completeness in every collector cell",
    )
    verify.add_argument(
        "--max-objects",
        type=int,
        default=4,
        metavar="N",
        help="model check: largest heap shape, in objects (default: %(default)s)",
    )
    verify.add_argument(
        "--max-edges",
        type=int,
        default=3,
        metavar="E",
        help="model check: most reference edges per shape (default: %(default)s)",
    )
    verify.add_argument(
        "--max-roots",
        type=int,
        default=2,
        metavar="R",
        help="model check: most static roots per shape (default: %(default)s)",
    )
    verify.add_argument(
        "--verbose",
        action="store_true",
        help="model check: print per-cell progress lines",
    )

    stats = add_command(
        "stats", "GC telemetry for one workload run", "stats --workload db --json"
    )
    stats.add_argument("--workload", default="pseudojbb")
    stats.add_argument(
        "--collector",
        default="marksweep",
        choices=["marksweep", "semispace", "generational"],
    )
    stats.add_argument("--heap", type=int, default=None, help="heap bytes override")
    stats.add_argument(
        "--gc-workers",
        type=int,
        default=None,
        metavar="N",
        help="mark with N parallel workers on a zone-sharded heap "
        "(marksweep/generational; default: sequential unsharded heap)",
    )
    stats.add_argument(
        "--assertions",
        action="store_true",
        help="use the benchmark's asserted variant when it has one",
    )
    stats.add_argument(
        "--paranoid",
        action="store_true",
        help="run the paranoid wellformedness walker before and after every GC "
        "(fails fast with HeapVerificationError on any broken invariant)",
    )
    stats.add_argument("--jsonl", metavar="PATH", help="stream events to a JSONL file")
    output = stats.add_mutually_exclusive_group()
    output.add_argument("--json", action="store_true", help="full summary as JSON")
    output.add_argument(
        "--prom", action="store_true", help="Prometheus text exposition format"
    )

    snapshot = sub.add_parser(
        "snapshot",
        help="heap snapshots and leak triage",
        epilog=(
            "example: python -m repro snapshot capture --workload swapleak "
            "--out-dir /tmp/snaps --every-n-gcs 1 --gc-every-swaps 16\n"
            + _EXIT_CODES
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    snap_sub = snapshot.add_subparsers(dest="snapshot_command", required=True)

    def add_snapshot_command(name: str, help_text: str, example: str):
        return snap_sub.add_parser(
            name,
            help=help_text,
            epilog=f"example: python -m repro snapshot {example}\n{_EXIT_CODES}",
            formatter_class=argparse.RawDescriptionHelpFormatter,
        )

    capture = add_snapshot_command(
        "capture",
        "run a workload and capture heap snapshot(s)",
        "capture --workload swapleak --out-dir snaps --every-n-gcs 1 --gc-every-swaps 16",
    )
    capture.add_argument(
        "--workload",
        default="swapleak",
        help="suite workload name or 'swapleak' (default: %(default)s)",
    )
    capture.add_argument("--out-dir", default="snapshots", metavar="DIR")
    capture.add_argument(
        "--collector",
        default="marksweep",
        choices=["marksweep", "semispace", "generational"],
    )
    capture.add_argument("--heap", type=int, default=4 << 20, help="heap bytes")
    capture.add_argument(
        "--every-n-gcs",
        type=int,
        default=None,
        metavar="N",
        help="piggyback a capture on every Nth collection",
    )
    capture.add_argument(
        "--on-violation",
        action="store_true",
        help="also capture (and annotate the report) when an assertion fires",
    )
    capture.add_argument(
        "--assertions",
        action="store_true",
        help="run the workload's asserted variant (swapleak: assert-dead per swap)",
    )
    capture.add_argument("--swaps", type=int, default=64, help="swapleak: swap count")
    capture.add_argument(
        "--array-size", type=int, default=32, help="swapleak: SObject array size"
    )
    capture.add_argument(
        "--gc-every-swaps",
        type=int,
        default=0,
        metavar="N",
        help="swapleak: collect every N swaps (gives every-n-gcs captures to bracket)",
    )
    capture.add_argument(
        "--static-rep",
        action="store_true",
        help="swapleak: run the repaired (non-leaking) variant",
    )

    analyze = add_snapshot_command(
        "analyze",
        "dominator/retained-size analysis of one snapshot",
        "analyze snaps/final.jsonl --top 10",
    )
    analyze.add_argument("snapshot", help="snapshot .jsonl path")
    analyze.add_argument("--top", type=int, default=10)

    diff = add_snapshot_command(
        "diff",
        "rank leak candidates between two snapshots",
        "diff snaps/heap-gc00001-interval.jsonl snaps/final.jsonl",
    )
    diff.add_argument("first", help="earlier snapshot .jsonl path")
    diff.add_argument("last", help="later snapshot .jsonl path")
    diff.add_argument("--limit", type=int, default=10)

    why = add_snapshot_command(
        "why",
        "why is this object alive? dominator chain + retained size",
        "why snaps/final.jsonl 0x1040",
    )
    why.add_argument("snapshot", help="snapshot .jsonl path")
    why.add_argument("address", help="object address (decimal or 0x-hex)")
    why.add_argument(
        "--types-only",
        action="store_true",
        help="render the chain as types without addresses (Figure-1 style)",
    )

    def add_workload_arguments(target):
        """The shared workload-selection knobs for trace/top commands."""
        target.add_argument(
            "--workload",
            default="pseudojbb",
            help="suite workload name or 'swapleak' (default: %(default)s)",
        )
        target.add_argument(
            "--collector",
            default="marksweep",
            choices=["marksweep", "semispace", "generational"],
        )
        target.add_argument(
            "--heap",
            type=int,
            default=None,
            help="heap bytes (default: the workload's tuned suite size)",
        )
        target.add_argument(
            "--assertions",
            action="store_true",
            help="use the workload's asserted variant when it has one",
        )
        target.add_argument(
            "--gc-workers",
            type=int,
            default=None,
            metavar="N",
            help="mark with N parallel workers on a zone-sharded heap "
            "(marksweep/generational; default: sequential unsharded heap)",
        )
        target.add_argument(
            "--swaps", type=int, default=64, help="swapleak: swap count"
        )
        target.add_argument(
            "--array-size", type=int, default=32, help="swapleak: SObject array size"
        )
        target.add_argument(
            "--gc-every-swaps",
            type=int,
            default=16,
            metavar="N",
            help="swapleak: collect every N swaps (default: %(default)s)",
        )
        target.add_argument(
            "--static-rep",
            action="store_true",
            help="swapleak: run the repaired (non-leaking) variant",
        )

    trace = sub.add_parser(
        "trace",
        help="in-pause span tracing: Perfetto export and mark-work attribution",
        epilog=(
            "example: python -m repro trace run --workload lusearch --out trace.json\n"
            + _EXIT_CODES
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    def add_trace_command(name: str, help_text: str, example: str):
        return trace_sub.add_parser(
            name,
            help=help_text,
            epilog=f"example: python -m repro trace {example}\n{_EXIT_CODES}",
            formatter_class=argparse.RawDescriptionHelpFormatter,
        )

    trace_run = add_trace_command(
        "run",
        "run a workload under span tracing; export Chrome/Perfetto JSON",
        "run --workload lusearch --out trace.json --flame mark.folded",
    )
    add_workload_arguments(trace_run)
    trace_run.add_argument(
        "--paranoid",
        action="store_true",
        help="run the paranoid wellformedness walker before and after every GC",
    )
    trace_run.add_argument(
        "--out",
        default="trace.json",
        metavar="PATH",
        help="Chrome trace_event JSON output path (default: %(default)s)",
    )
    trace_run.add_argument(
        "--flame",
        metavar="PATH",
        help="also write a collapsed-stack flamegraph of mark work "
        "by (type, alloc site)",
    )
    trace_run.add_argument(
        "--flame-weight",
        choices=["bytes", "objects"],
        default="bytes",
        help="flamegraph weight (default: %(default)s)",
    )

    trace_report = add_trace_command(
        "report",
        "per-phase span table + mark-drain piggyback-cost attribution",
        "report --workload pseudojbb --assertions",
    )
    add_workload_arguments(trace_report)

    trace_serve = add_trace_command(
        "serve",
        "distributed tracing: traced multi-tenant load + per-request breakdown",
        "serve --sessions 8 --out dtrace.json",
    )
    trace_serve.add_argument(
        "--sessions", type=int, default=8,
        help="sessions to drive through the traced service (default: %(default)s)",
    )
    trace_serve.add_argument(
        "--rate", type=float, default=200.0,
        help="Poisson arrival rate, sessions/s (default: %(default)s)",
    )
    trace_serve.add_argument("--seed", type=int, default=0)
    trace_serve.add_argument(
        "--quick", action="store_true",
        help="CI smoke shape: at most 12 sessions",
    )
    trace_serve.add_argument(
        "--heap-budget", type=int, default=8 << 20, metavar="BYTES",
        help="self-hosted service budget (default: %(default)s)",
    )
    trace_serve.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the merged multi-tenant Chrome/Perfetto trace here",
    )
    trace_serve.add_argument(
        "--delivery-lag-slo-ms", type=float, default=None, metavar="MS",
        help="override the violation-delivery SLO (tight values force the "
        "burn-rate alert, for drills)",
    )

    top = add_command(
        "top",
        "live terminal view: pauses, sweep debt, census slopes, hottest phases",
        "top --workload pseudojbb --interval 0.5",
    )
    add_workload_arguments(top)
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between repaints (default: %(default)s)",
    )
    top.add_argument(
        "--frames",
        type=int,
        default=None,
        metavar="N",
        help="exit after N frames (for scripting/CI; default: run to completion)",
    )

    monitor = add_command(
        "monitor",
        "continuous heap-health monitoring: MMU, SLO budgets, burn-rate alerts",
        "monitor --workload lusearch --serve 9464 --watch",
    )
    add_workload_arguments(monitor)
    monitor.add_argument(
        "--serve",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics /health /slo on this port while running "
        "(0 = ephemeral)",
    )
    monitor.add_argument(
        "--watch",
        action="store_true",
        help="repaint a live SLO/utilization view while the workload runs",
    )
    monitor.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="--watch: seconds between repaints (default: %(default)s)",
    )
    monitor.add_argument(
        "--frames",
        type=int,
        default=None,
        metavar="N",
        help="--watch: exit after N frames (for scripting/CI)",
    )
    monitor.add_argument(
        "--pause-slo-ms",
        type=float,
        default=50.0,
        metavar="MS",
        help="p99 pause objective in milliseconds (default: %(default)s)",
    )
    monitor.add_argument(
        "--mmu-floor",
        type=float,
        default=0.3,
        help="MMU(100ms) floor objective (default: %(default)s)",
    )
    monitor.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="inject a seeded fault schedule on a hardened VM "
        "(drives degradation SLOs)",
    )

    serve = add_command(
        "serve",
        "multi-tenant assertion service: async session server + HTTP sidecar",
        "serve --port 9700 --heap-budget 16777216",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="wire-protocol TCP port (default: ephemeral)",
    )
    serve.add_argument(
        "--http-port", type=int, default=0, metavar="PORT",
        help="/metrics /health /slo sidecar port (default: ephemeral)",
    )
    serve.add_argument(
        "--heap-budget", type=int, default=8 << 20, metavar="BYTES",
        help="aggregate committed-heap admission budget (default: %(default)s)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=None, metavar="N",
        help="hard cap on concurrent sessions (default: budget-limited only)",
    )
    serve.add_argument(
        "--workers", type=int, default=8,
        help="executor threads running tenant GC work (default: %(default)s)",
    )
    serve.add_argument(
        "--no-hardened", action="store_true",
        help="tenant VMs without the PR-5 OOM ladder (halves committed bytes)",
    )
    serve.add_argument(
        "--paranoid", action="store_true",
        help="tenant VMs run the paranoid wellformedness walker around every GC",
    )

    loadgen = add_command(
        "loadgen",
        "open-loop Poisson load generator for the assertion service",
        "loadgen --sessions 100 --rate 200 --mode ramp",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument(
        "--port", type=int, default=None,
        help="target service port (default: self-host an in-process service)",
    )
    loadgen.add_argument(
        "--sessions", type=int, default=50,
        help="total sessions to run (default: %(default)s)",
    )
    loadgen.add_argument(
        "--rate", type=float, default=200.0,
        help="Poisson arrival rate, sessions/s (default: %(default)s)",
    )
    loadgen.add_argument(
        "--mode", choices=("flow", "ramp"), default="flow",
        help="flow: open-loop arrivals; ramp: all sessions open first "
        "(drives admission to the budget limit)",
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--heap-budget", type=int, default=8 << 20, metavar="BYTES",
        help="self-hosted service budget (default: %(default)s)",
    )
    loadgen.add_argument(
        "--quick", action="store_true",
        help="CI smoke shape: at most 12 sessions",
    )
    loadgen.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="write the report as JSON",
    )
    loadgen.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="distributed tracing: write the merged multi-tenant "
        "Chrome/Perfetto trace here (implies a self-hosted service)",
    )
    loadgen.add_argument(
        "--delivery-lag-slo-ms", type=float, default=None, metavar="MS",
        help="override the self-hosted service's violation-delivery SLO "
        "(tight values force the burn-rate alert, for drills/CI)",
    )

    chaos = add_command(
        "chaos",
        "fault-injection soak across the collector matrix",
        "chaos --quick --seed 7",
    )
    chaos.add_argument(
        "--quick",
        action="store_true",
        help="one seed, smoke workload pair (lusearch + swapleak) — the CI gate",
    )
    chaos.add_argument(
        "--seed",
        type=int,
        default=0,
        help="fault-schedule seed; a failing run replays bit-for-bit "
        "(default: %(default)s)",
    )
    chaos.add_argument(
        "--paranoid",
        action="store_true",
        help="chaos-cell VMs run the paranoid wellformedness walker around "
        "every GC (hardened recovery repairs damage before each walk)",
    )

    minij = add_command("minij", "run a MiniJ program", "minij examples/programs/linked_list.minij")
    minij.add_argument("file")
    minij.add_argument("--entry", default="main")
    minij.add_argument("--heap", type=int, default=4 << 20)

    args = parser.parse_args(argv)
    handlers = {
        "info": cmd_info,
        "demo": cmd_demo,
        "figures": cmd_figures,
        "bench": cmd_bench,
        "verify": cmd_verify,
        "stats": cmd_stats,
        "top": cmd_top,
        "monitor": cmd_monitor,
        "serve": cmd_serve,
        "loadgen": cmd_loadgen,
        "chaos": cmd_chaos,
        "minij": cmd_minij,
    }
    if args.command == "trace":
        trace_handlers = {
            "run": cmd_trace_run,
            "report": cmd_trace_report,
            "serve": cmd_trace_serve,
        }
        return trace_handlers[args.trace_command](args)
    if args.command == "snapshot":
        snapshot_handlers = {
            "capture": cmd_snapshot_capture,
            "analyze": cmd_snapshot_analyze,
            "diff": cmd_snapshot_diff,
            "why": cmd_snapshot_why,
        }
        return snapshot_handlers[args.snapshot_command](args)
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
