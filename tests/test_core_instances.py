"""assert-instances (§2.4.1): per-class live-instance limits."""

import pytest

from repro.core.reporting import AssertionKind
from tests.conftest import build_chain, make_node_class


class TestInstanceLimits:
    def test_under_limit_passes(self, vm, node_class):
        build_chain(vm, node_class, 3)
        vm.assertions.assert_instances(node_class, 5)
        vm.gc()
        assert len(vm.engine.log) == 0

    def test_at_limit_passes(self, vm, node_class):
        build_chain(vm, node_class, 5)
        vm.assertions.assert_instances(node_class, 5)
        vm.gc()
        assert len(vm.engine.log) == 0

    def test_over_limit_triggers(self, vm, node_class):
        build_chain(vm, node_class, 6)
        vm.assertions.assert_instances(node_class, 5)
        vm.gc()
        violations = vm.engine.log.of_kind(AssertionKind.INSTANCES)
        assert len(violations) == 1
        assert violations[0].details["count"] == 6
        assert violations[0].details["limit"] == 5

    def test_zero_limit_flags_any_instance(self, vm, node_class):
        """'Passing 0 for I checks that no instances of a particular class
        exist (at GC time).'"""
        build_chain(vm, node_class, 1)
        vm.assertions.assert_instances(node_class, 0)
        vm.gc()
        assert len(vm.engine.log.of_kind(AssertionKind.INSTANCES)) == 1

    def test_counts_only_live_instances(self, vm, node_class):
        nodes = build_chain(vm, node_class, 8)
        vm.assertions.assert_instances(node_class, 5)
        nodes[3]["next"] = None  # nodes 4..7 die
        vm.gc()
        assert len(vm.engine.log) == 0
        assert node_class.instance_count == 4

    def test_count_resets_each_gc(self, vm, node_class):
        build_chain(vm, node_class, 3)
        vm.assertions.assert_instances(node_class, 10)
        vm.gc()
        vm.gc()
        assert node_class.instance_count == 3  # not 6

    def test_by_class_name(self, vm, node_class):
        build_chain(vm, node_class, 2)
        vm.assertions.assert_instances("Node", 1)
        vm.gc()
        assert len(vm.engine.log) == 1

    def test_singleton_pattern_check(self, vm):
        singleton_cls = vm.define_class("Singleton", [("data", "int")])
        vm.assertions.assert_instances(singleton_cls, 1)
        with vm.scope():
            a = vm.new(singleton_cls)
            vm.statics.set_ref("instance", a.address)
        vm.gc()
        assert len(vm.engine.log) == 0
        # A second instance appears (e.g. via serialization): violation.
        with vm.scope():
            b = vm.new(singleton_cls)
            vm.statics.set_ref("rogue", b.address)
        vm.gc()
        assert len(vm.engine.log.of_kind(AssertionKind.INSTANCES)) == 1

    def test_untracked_classes_not_counted(self, vm, node_class):
        other = vm.define_class("Other")
        build_chain(vm, node_class, 3)
        vm.assertions.assert_instances(other, 0)
        vm.gc()
        assert len(vm.engine.log) == 0
        assert node_class.instance_count == 0  # Node is not tracked

    def test_limit_update_takes_latest(self, vm, node_class):
        build_chain(vm, node_class, 4)
        vm.assertions.assert_instances(node_class, 1)
        vm.assertions.assert_instances(node_class, 10)
        vm.gc()
        assert len(vm.engine.log) == 0

    def test_violation_repeats_while_over(self, vm, node_class):
        build_chain(vm, node_class, 2)
        vm.assertions.assert_instances(node_class, 1)
        vm.gc()
        vm.gc()
        assert len(vm.engine.log.of_kind(AssertionKind.INSTANCES)) == 2

    def test_no_path_available_for_instances(self, vm, node_class):
        """§2.7: for assert-instances 'the problem paths may have been traced
        earlier' — no path is reported."""
        build_chain(vm, node_class, 2)
        vm.assertions.assert_instances(node_class, 1)
        vm.gc()
        violation = vm.engine.log.of_kind(AssertionKind.INSTANCES)[0]
        assert violation.path is None
