"""A generational mark-sweep collector.

§2.2 of the paper: "Our technique will work with any tracing collector, such
as generational mark/sweep.  A generational collector, however, performs
full-heap collections infrequently, allowing some assertions to go unchecked
for long periods of time."

This collector exists to measure exactly that effect (experiment ``abl-gen``
in DESIGN.md): a bump-allocated nursery collected by frequent *minor*
collections that check **no** assertions, plus a free-list mature space
collected by infrequent *full-heap* mark-sweep collections that run the
complete assertion machinery.  Minor collections are kept sound by a
reference-store write barrier that records mature objects pointing into the
nursery (the remembered set).

The mature space sweeps through the shared :class:`ChunkSweeper`.  Under
``sweep_mode="eager"`` (default) the full-heap pause keeps its classic
shape; under ``"lazy"`` the pause ends after marking and promotion, and
mature chunks are reclaimed on demand — promotion and mutator mature
allocation repay debt through :meth:`_mature_allocate`, whose per-chunk
purge upholds the purge-before-reuse invariant the eager path gets from its
single bulk purge.  One lazy-mode imprecision: a dead-but-unswept mature
object can still sit in the remembered set, so the nursery objects it
references float for one extra minor cycle — the same one-GC slack the
paper accepts for its ownership phase (§2.5.2).
"""

from __future__ import annotations

from repro.errors import HeapError, InvalidAddressError
from repro.gc.base import Collector
from repro.gc.lazysweep import LAZY_SWEEP_BATCH, ChunkSweeper
from repro.gc.stats import PhaseTimer
from repro.heap import header as hdr
from repro.heap.heap import SPACE_STRIDE
from repro.heap.layout import HEAP_BASE_ADDRESS, NULL
from repro.heap.object_model import ClassDescriptor, HeapObject
from repro.heap.space import BumpSpace, FreeListSpace
from repro.heap.zones import DEFAULT_ZONE_COUNT, ZoneMap

#: Fraction of the total heap budget given to the nursery.
DEFAULT_NURSERY_FRACTION = 0.15

#: Objects bigger than this fraction of the nursery allocate directly mature.
LARGE_OBJECT_FRACTION = 0.25


class GenerationalCollector(Collector):
    """Bump nursery + mark-sweep mature space, with a remembered set."""

    name = "generational"
    moving = True  # nursery survivors are promoted (moved) into mature space

    def __init__(
        self,
        heap_bytes: int,
        engine=None,
        track_paths=None,
        nursery_fraction: float = DEFAULT_NURSERY_FRACTION,
        sweep_mode: str = "eager",
        hardened: bool = False,
        max_heap_bytes=None,
        gc_workers: int = 0,
        zones: int = DEFAULT_ZONE_COUNT,
    ):
        super().__init__(heap_bytes, engine, track_paths, hardened, max_heap_bytes)
        if gc_workers > 0:
            # The nursery/mature pair keeps its legacy layout; full-heap
            # parallel marks bucket addresses by granule hash instead.
            # Minor collections are untouched (their copying scan is not a
            # mark drain and checks no assertions anyway).
            self.gc_workers = gc_workers
            self.zone_map = ZoneMap.hashed(zones)
        nursery_bytes = max(4096, int(heap_bytes * nursery_fraction))
        self.nursery = BumpSpace("nursery", nursery_bytes, HEAP_BASE_ADDRESS + SPACE_STRIDE)
        self.mature = FreeListSpace("mature", heap_bytes - nursery_bytes, HEAP_BASE_ADDRESS)
        self._large_threshold = int(nursery_bytes * LARGE_OBJECT_FRACTION)
        if sweep_mode not in ("eager", "lazy"):
            raise HeapError(f"unknown sweep mode {sweep_mode!r}")
        self.sweep_mode = sweep_mode
        self._mature_sweeper = ChunkSweeper(self, self.mature)
        #: Addresses of mature objects that may hold nursery references.
        self.remembered: set[int] = set()

    # -- allocation -----------------------------------------------------------------

    def allocate(self, cls: ClassDescriptor, length: int = 0) -> HeapObject:
        nbytes = cls.size_of(length)
        self._telemetry_allocation(nbytes)
        if nbytes > self._large_threshold:
            return self._allocate_mature(cls, length, nbytes)
        address = self.nursery.allocate(nbytes)
        if address is None:
            self.collect_minor(reason=f"nursery full ({nbytes} bytes requested)")
            address = self.nursery.allocate(nbytes)
            if address is None:
                return self._allocate_mature(cls, length, nbytes)
        return self.heap.install(address, cls, length)

    def _mature_allocate(self, nbytes: int) -> int | None:
        """Mature-space allocation that repays sweep debt on demand."""
        address = self.mature.allocate(nbytes)
        while address is None and self._mature_sweeper.debt:
            self._mature_sweeper.sweep_chunks(LAZY_SWEEP_BATCH)
            address = self.mature.allocate(nbytes)
        return address

    def _allocate_mature(self, cls: ClassDescriptor, length: int, nbytes: int) -> HeapObject:
        address = self._mature_allocate(nbytes)
        if address is None:
            self.collect(reason=f"mature allocation of {nbytes} bytes failed")
            address = self._mature_allocate(nbytes)
            while address is None and self._try_grow():
                address = self._mature_allocate(nbytes)
                if address is not None:
                    self.recovery.oom_recoveries += 1
            if address is None:
                raise self._oom(cls, nbytes, "mature space full after full-heap GC")
        try:
            return self.heap.install(address, cls, length)
        except InvalidAddressError:
            if not self.hardened:
                raise
            try:
                aliased_cell = self.mature.cell_size(address)
            except Exception:
                aliased_cell = 0
            self._fence_aliased_cell(self.mature, address, aliased_cell)
            return self._allocate_mature(cls, length, nbytes)

    def bytes_in_use(self) -> int:
        return self.nursery.bytes_in_use + self.mature.bytes_in_use

    def _grow_spaces(self, delta: int) -> None:
        # All growth goes to the mature space: the nursery's size governs
        # minor-collection cadence, which growth should not perturb.
        self.mature.capacity_bytes += delta

    # -- write barrier ----------------------------------------------------------------

    def write_barrier(self, src: HeapObject, new_address: int) -> None:
        """Record mature→nursery stores in the remembered set."""
        if new_address != NULL and self.nursery.contains(new_address) and not self.nursery.contains(src.address):
            self.remembered.add(src.address)

    # -- minor collection ---------------------------------------------------------------

    def collect_minor(self, reason: str = "explicit-minor") -> None:
        """Nursery-only collection.  Checks **no** assertions (§2.2).

        No hardened sentinel runs here: the minor trace is visited-set
        based and filters every edge through ``nursery.contains``, so a
        dangled or retargeted reference simply fails the filter — minor
        collections are naturally fault-robust and stay unsentineled to
        keep their pause cost unchanged.
        """
        # If the mature space cannot absorb the worst-case survivor volume,
        # try repaying sweep debt first, then fall back to a full-heap
        # collection (which also empties the nursery).
        headroom = int(self.nursery.bytes_in_use * 1.5)
        if self.mature.bytes_free < headroom:
            if self._mature_sweeper.debt:
                self.sweep_all()
            if self.mature.bytes_free < headroom:
                self.collect(reason=f"{reason}; mature too full for promotion")
                return
        # The span opens only now: the fallback above delegated to collect(),
        # which records its own ``collect`` span (a minor span wrapping a
        # full one would misattribute the whole pause to the minor kind).
        with self._span("collect", kind="minor", reason=reason):
            pending = self._telemetry_begin("minor", reason)
            with PhaseTimer(self.stats, "gc_seconds", self.span_tracer, "pause"):
                self.stats.collections += 1
                self.stats.minor_collections += 1
                self.gc_log.append(f"minorGC {self.stats.collections}: {reason}")
                freed, fwd = self._minor_trace_and_promote()
            if fwd:
                if self.engine is not None:
                    self.engine.apply_forwarding(fwd)
                if self.vm is not None:
                    self.vm.apply_forwarding(fwd)
            self.process_weak_references(fwd)
            if self.engine is not None:
                self.engine.purge(freed)
            if self.vm is not None:
                self.vm.on_gc_complete(freed)
            self._telemetry_end(pending)
            if self.paranoid:
                # Unlike the sentinel (skipped above), the paranoid walk is
                # debt-aware and read-only, so it can bracket minor GCs too.
                self._paranoid_check("post-minor")

    def _minor_trace_and_promote(self) -> tuple[set[int], dict[int, int]]:
        heap = self.heap
        stats = self.stats
        nursery = self.nursery

        # Mark phase restricted to nursery objects; roots are the VM roots
        # plus the fields of remembered mature objects.
        visited: set[int] = set()
        stack: list[int] = []

        def reach(address: int) -> None:
            if address != NULL and nursery.contains(address) and address not in visited:
                visited.add(address)
                stack.append(address)

        with PhaseTimer(stats, "mark_seconds", self.span_tracer, "mark"):
            for _desc, address in self._roots():
                reach(address)
            for src_address in self.remembered:
                src = heap.maybe(src_address)
                if src is None:
                    continue
                for child in src.reference_slots():
                    reach(child)
            while stack:
                obj = heap.get(stack.pop())
                stats.objects_traced += 1
                for child in obj.reference_slots():
                    stats.edges_traced += 1
                    reach(child)

        # Promotion: move every survivor into the mature space.
        fwd: dict[int, int] = {}
        survivors: list[HeapObject] = []
        freed: set[int] = set()
        with PhaseTimer(stats, "sweep_seconds", self.span_tracer, "sweep"):
            for address in nursery.addresses():
                obj = heap.maybe(address)
                if obj is None:
                    continue
                stats.objects_swept += 1
                if address in visited:
                    new_address = self._promote(obj)
                    fwd[address] = new_address
                    survivors.append(obj)
                    stats.objects_promoted += 1
                else:
                    freed.add(address)
                    stats.objects_freed += 1
                    stats.bytes_freed += obj.size_bytes
                    heap.evict(obj)

            # Only survivors, remembered sources, and roots can reference
            # moved objects (the write barrier maintains that invariant).
            for obj in survivors:
                self._forward_slots(obj, fwd)
            for src_address in self.remembered:
                src = heap.maybe(src_address)
                if src is not None:
                    self._forward_slots(src, fwd)

            nursery.reset()
            self.remembered.clear()
        return freed, fwd

    def _promote(self, obj: HeapObject) -> int:
        """Allocate a mature cell for one survivor and relocate it there.

        Hardened mode retries around a corrupt target cell: an install
        collision (corrupted free-list metadata aliasing a live object) is
        fenced and a fresh cell requested, bounded to a handful of attempts.
        A growth attempt backstops promotion pressure when a ceiling allows.
        """
        heap = self.heap
        attempts = 4 if self.hardened else 1
        for _ in range(attempts):
            new_address = self._mature_allocate(obj.size_bytes)
            if new_address is None and self._try_grow():
                self.recovery.oom_recoveries += 1
                new_address = self._mature_allocate(obj.size_bytes)
            if new_address is None:
                raise self._oom(obj.cls, obj.size_bytes, "promotion failed")
            try:
                heap.relocate(obj, new_address)
                return new_address
            except InvalidAddressError:
                if not self.hardened:
                    raise
                try:
                    aliased_cell = self.mature.cell_size(new_address)
                except Exception:
                    aliased_cell = 0
                self._fence_aliased_cell(self.mature, new_address, aliased_cell)
        raise self._oom(obj.cls, obj.size_bytes, "promotion failed after quarantine")

    @staticmethod
    def _forward_slots(obj: HeapObject, fwd: dict[int, int]) -> None:
        slots = obj.slots
        for idx in obj.reference_slot_indices():
            child = slots[idx]
            if child != NULL:
                new = fwd.get(child)
                if new is not None:
                    slots[idx] = new

    # -- full-heap collection --------------------------------------------------------------

    def collect(self, reason: str = "explicit") -> None:
        """Full-heap mark-sweep with the complete assertion machinery.

        Also evacuates the nursery (all surviving nursery objects are
        promoted), so the nursery is empty afterwards.  Promotion may
        recycle mature cells freed by this very sweep, so all address-keyed
        metadata (assertion registry, region queues) is purged before any
        such cell can be handed out: eagerly in one bulk purge between
        sweeping and promotion, lazily per chunk inside
        :meth:`_mature_allocate`.
        """
        with self._span("collect", kind="full", reason=reason):
            # Repay the previous cycle's debt before a new trace: the
            # ownership phase must not walk registry entries for dead
            # owners, and header bits of pending garbage belong to the old
            # cycle.
            with self._span("prologue"):
                self.sweep_all()
            if self.hardened:
                # Debt repaid, so mark bits are legitimately clear and the
                # sentinel may repair/quarantine across both spaces.
                self._sentinel_check("pre-gc")
            if self.paranoid:
                self._paranoid_check("pre-gc")
            pending = self._telemetry_begin("full", reason)
            with PhaseTimer(self.stats, "gc_seconds", self.span_tracer, "pause"):
                self.stats.collections += 1
                self.stats.full_collections += 1
                self.gc_log.append(f"fullGC {self.stats.collections}: {reason}")

                tracer = self._make_tracer(reason)
                self._run_mark_phase(tracer)
                self._mature_sweeper.schedule()
                nursery_freed = self._sweep_nursery_dead()
                if self.sweep_mode == "eager":
                    freed = nursery_freed | self._mature_sweeper.drain_eager()
                    # Purge before promotion can recycle any freed mature cell.
                    self._purge_before_reuse(freed)
                else:
                    # Mature chunks stay pending; only the chunk sweeper
                    # (which purges per chunk) can recycle their cells
                    # during promotion.
                    self._purge_before_reuse(nursery_freed)
                fwd = self._promote_survivors()
            if fwd:
                if self.engine is not None:
                    self.engine.apply_forwarding(fwd)
                if self.vm is not None:
                    self.vm.apply_forwarding(fwd)
            if self.sweep_mode == "eager":
                self.process_weak_references(fwd)
                if self.engine is not None:
                    self.engine.finalize(self)
                if self.vm is not None:
                    # Metadata was purged pre-promotion; observers fire here.
                    self.vm.on_gc_complete(set())
            else:
                self._finish_mark_only(self._mature_sweeper.cutoff, fwd)
            # Only full collections capture (minor collections use their own
            # nursery traversal, not the tracer); write cost stays off-pause.
            self._snapshot_flush()
            self._telemetry_end(pending)
            if self.hardened and self.sweep_debt() == 0:
                self._sentinel_check("post-gc")
            if self.paranoid:
                self._paranoid_check("post-gc")

    def _sweep_nursery_dead(self) -> set[int]:
        """Evict dead nursery objects (the nursery never sweeps lazily —
        promotion empties it inside the pause regardless of mode)."""
        heap = self.heap
        stats = self.stats
        nursery = self.nursery
        freed: set[int] = set()
        with PhaseTimer(stats, "sweep_seconds", self.span_tracer, "sweep"):
            for address in nursery.addresses():
                obj = heap.maybe(address)
                if obj is None:
                    continue
                stats.objects_swept += 1
                if obj.status & hdr.MARK_BIT:
                    continue
                freed.add(address)
                stats.objects_freed += 1
                stats.bytes_freed += obj.size_bytes
                nursery.release(address)
                heap.evict(obj)
        return freed

    def _promote_survivors(self) -> dict[int, int]:
        """Move surviving nursery objects into the mature space.

        Iterates the nursery only: in lazy mode the heap table still holds
        dead-but-unswept mature objects whose header bits the chunk sweep
        will read, so they must not be touched here.  Mature survivors'
        bits are cleared by the chunk sweep itself; promoted objects are
        cleared here and re-stamped past the sweep cutoff by ``relocate``,
        so a pending chunk sweep never mistakes them for old occupants.
        """
        heap = self.heap
        stats = self.stats
        nursery = self.nursery
        fwd: dict[int, int] = {}
        with PhaseTimer(stats, "sweep_seconds", self.span_tracer, "sweep"):
            for address in nursery.addresses():
                obj = heap.maybe(address)
                if obj is None:
                    continue
                self.clear_gc_bits(obj)
                new_address = self._promote(obj)
                fwd[address] = new_address
                stats.objects_promoted += 1
            if fwd:
                # Promotion moved objects: any live object may reference them.
                for obj in heap:
                    self._forward_slots(obj, fwd)
            nursery.reset()
            self.remembered.clear()
        return fwd

    # -- lazy-sweep surface ------------------------------------------------------------

    def sweep_all(self) -> None:
        self._mature_sweeper.sweep_all()

    def sweep_debt(self) -> int:
        return self._mature_sweeper.debt

    def pending_garbage_predicate(self):
        sweeper = self._mature_sweeper
        if not sweeper.debt:
            return None
        cutoff = sweeper.cutoff
        mark_bit = hdr.MARK_BIT

        def _is_pending_garbage(obj: HeapObject) -> bool:
            return obj.alloc_seq <= cutoff and not (obj.status & mark_bit)

        return _is_pending_garbage
