"""In-pause span tracing: phase spans, Perfetto export, mark attribution.

The observability ladder so far: telemetry (PR 1) records one event per
collection; snapshots (PR 3) record the heap at a collection.  This package
records what happens *inside* a collection — a strictly nested span per GC
phase (``collect`` → ``prologue`` / ``pause`` → ``ownership_phase`` /
``mark`` → ``root_scan`` / ``mark_drain`` / ``sweep``, plus
``lazy_sweep_slice`` between pauses), assertion-lifecycle instants, and
counter tracks — exported as Chrome ``trace_event`` JSON that Perfetto and
chrome://tracing load directly.

Entry points:

* :class:`~repro.tracing.spans.SpanTracer` — the recorder; a VM built with
  ``tracing=True`` owns one and shares it with its collector.
* :mod:`~repro.tracing.export` — Perfetto-loadable JSON + the validator the
  schema test and CI use.
* :mod:`~repro.tracing.report` — per-phase aggregation and the
  piggyback-cost attribution report (``repro trace report``).
* :mod:`~repro.tracing.flame` — collapsed-stack flamegraph of mark work by
  (object type, allocation site).
* :mod:`~repro.tracing.top` — the live ``repro top`` terminal view.
* :mod:`~repro.tracing.distributed` — end-to-end request tracing across
  the multi-tenant service: W3C-style trace context on the wire, server
  request-lifecycle spans, and the merge layer that folds every tenant
  VM's trace into one multi-track Perfetto export.
"""

from repro.tracing.distributed import (
    DTRACE_SCHEMA,
    DistributedTracer,
    TraceContext,
    merge_service_trace,
    render_request_report,
    request_rows,
    write_merged_trace,
)
from repro.tracing.export import (
    TRACE_SCHEMA,
    chrome_trace_events,
    trace_payload,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.tracing.flame import collapsed_stacks, write_flamegraph
from repro.tracing.report import (
    aggregate_spans,
    piggyback_report,
    render_piggyback,
    render_span_table,
)
from repro.tracing.spans import MARK_ATTRIBUTION_UNTAGGED, SpanTracer
from repro.tracing.top import render_frame, run_top

__all__ = [
    "DTRACE_SCHEMA",
    "DistributedTracer",
    "MARK_ATTRIBUTION_UNTAGGED",
    "SpanTracer",
    "TRACE_SCHEMA",
    "TraceContext",
    "aggregate_spans",
    "chrome_trace_events",
    "collapsed_stacks",
    "merge_service_trace",
    "piggyback_report",
    "render_frame",
    "render_piggyback",
    "render_request_report",
    "render_span_table",
    "request_rows",
    "run_top",
    "trace_payload",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_flamegraph",
]
