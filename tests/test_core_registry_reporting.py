"""AssertionRegistry bookkeeping and Violation/HeapPath rendering."""

import pytest

from repro.core.registry import AssertionRegistry, OwnerRecord
from repro.core.reporting import AssertionKind, HeapPath, Violation, ViolationLog
from repro.errors import AssertionUsageError
from repro.heap.object_model import ClassDescriptor, FieldKind, HeapObject


class TestOwnerRecord:
    def test_sorted_insertion(self):
        record = OwnerRecord(0x1000, "t")
        for address in (0x5000, 0x2000, 0x9000, 0x3000):
            record.add(address)
        assert record.ownees == sorted(record.ownees)

    def test_duplicate_add_ignored(self):
        record = OwnerRecord(0x1000, "t")
        record.add(0x2000)
        record.add(0x2000)
        assert len(record) == 1

    def test_binary_search_finds_all(self):
        record = OwnerRecord(0x1000, "t")
        addresses = [0x2000 + 8 * i for i in range(33)]
        for a in addresses:
            record.add(a)
        for a in addresses:
            found, probes = record.contains(a)
            assert found
            assert 1 <= probes <= 7  # log2(33) ~ 6

    def test_binary_search_miss(self):
        record = OwnerRecord(0x1000, "t")
        record.add(0x2000)
        found, probes = record.contains(0x3000)
        assert not found
        assert probes >= 1

    def test_remove(self):
        record = OwnerRecord(0x1000, "t")
        record.add(0x2000)
        assert record.remove(0x2000)
        assert not record.remove(0x2000)
        assert len(record) == 0


class TestRegistry:
    def test_dead_site_serials_increase(self):
        registry = AssertionRegistry()
        a = registry.register_dead(0x1000, "a", 0)
        b = registry.register_dead(0x2000, "b", 0)
        assert b.serial > a.serial

    def test_purge_freed_satisfies_dead(self):
        registry = AssertionRegistry()
        registry.register_dead(0x1000, "a", 0)
        registry.register_dead(0x2000, "b", 0)
        info = registry.purge_freed({0x1000})
        assert info["dead_satisfied"] == [0x1000]
        assert registry.dead_satisfied == 1
        assert 0x2000 in registry.dead_sites

    def test_purge_freed_removes_ownees_and_flags_dead_owners(self):
        registry = AssertionRegistry()
        registry.register_owned_by(0x1000, 0x2000, "t")
        registry.register_owned_by(0x1000, 0x3000, "t")
        registry.register_owned_by(0x4000, 0x5000, "t")
        info = registry.purge_freed({0x2000, 0x4000})
        assert registry.owner_of(0x2000) is None
        assert registry.owner_of(0x3000) == 0x1000
        assert info["dead_owners"] == [0x4000]
        assert registry.ownees_reclaimed == 1

    def test_drop_owner_returns_survivors(self):
        registry = AssertionRegistry()
        registry.register_owned_by(0x1000, 0x2000, "t")
        registry.register_owned_by(0x1000, 0x3000, "t")
        survivors = registry.drop_owner(0x1000)
        assert sorted(survivors) == [0x2000, 0x3000]
        assert registry.owner_of(0x2000) is None
        assert registry.drop_owner(0x1000) == []

    def test_forwarding_rewrites_everything(self):
        registry = AssertionRegistry()
        registry.register_dead(0x1000, "a", 0)
        registry.register_unshared(0x2000, "u")
        registry.register_owned_by(0x3000, 0x4000, "o")
        fwd = {0x1000: 0x11000, 0x2000: 0x12000, 0x3000: 0x13000, 0x4000: 0x14000}
        registry.apply_forwarding(fwd)
        assert 0x11000 in registry.dead_sites
        assert 0x12000 in registry.unshared_sites
        assert registry.owner_of(0x14000) == 0x13000
        record = registry.owners[0x13000]
        assert record.ownees == [0x14000]
        assert record.ownees == sorted(record.ownees)

    def test_forwarding_empty_is_noop(self):
        registry = AssertionRegistry()
        registry.register_dead(0x1000, "a", 0)
        registry.apply_forwarding({})
        assert 0x1000 in registry.dead_sites

    def test_snapshot_shape(self):
        registry = AssertionRegistry()
        registry.register_dead(0x1000, "a", 0)
        snap = registry.snapshot()
        assert snap["dead_pending"] == 1
        assert "calls" in snap


def _obj(name="C", address=0x1000):
    cls = ClassDescriptor(0, name, [("x", FieldKind.INT)])
    return HeapObject(address, cls)


class TestReporting:
    def test_path_render_arrow_separated(self):
        path = HeapPath("static 'root'", [_obj("A", 0x1000), _obj("B", 0x1008)])
        text = path.render()
        assert text.splitlines()[0] == "static 'root' ->"
        assert "A ->" in text
        assert text.endswith("B")

    def test_path_render_with_addresses(self):
        path = HeapPath(None, [_obj("A", 0x1000)])
        assert "0x1000" in path.render(show_addresses=True)

    def test_empty_path_renders_placeholder(self):
        path = HeapPath(None, [])
        assert path.render() == "(no path available)"

    def test_violation_render_includes_all_sections(self):
        violation = Violation(
            AssertionKind.DEAD,
            "an object that was asserted dead is reachable.",
            obj=_obj("spec.jbb.Order"),
            site="Delivery.process",
            path=HeapPath("static 'company'", [_obj("spec.jbb.Company")]),
            gc_number=3,
        )
        text = violation.render()
        assert "Warning:" in text
        assert "Type: spec.jbb.Order" in text
        assert "Asserted at: Delivery.process" in text
        assert "Path to object:" in text

    def test_log_filters_by_kind(self):
        log = ViolationLog()
        log.record(Violation(AssertionKind.DEAD, "d"))
        log.record(Violation(AssertionKind.UNSHARED, "u"))
        assert len(log.of_kind(AssertionKind.DEAD)) == 1
        assert len(log) == 2

    def test_log_clear(self):
        log = ViolationLog()
        log.record(Violation(AssertionKind.DEAD, "d"))
        log.clear()
        assert len(log) == 0
        assert log.lines == []
