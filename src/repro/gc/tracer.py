"""The tracing engine: transitive marking with low-bit path tracking.

This implements the paper's §2.7 worklist algorithm.  The gray-object
worklist holds integer heap addresses; because objects are word aligned the
low-order bit of each entry is free, and the tracer uses it to keep an
object *on* the worklist while its children are being traced:

    "We pop a reference from the worklist, set its low order bit and push it
    back onto the worklist; then we continue to scan the object normally.
    [...] at any given time during tracing, the subset of the worklist whose
    references have their low bit set define the complete path from the root
    to the current object."

:meth:`Tracer.current_path` reconstructs that path on demand, which is what
gives violation reports their Figure-1 root-to-object paths for free.
:meth:`Tracer.current_path_addresses` is the cheap variant (raw addresses,
no object materialization) and :meth:`Tracer.path_depth` cheaper still, for
consumers that only need the length.

The tracer calls two assertion hooks on an attached engine:

* ``on_first_encounter(obj, tracer, parent)`` — the object was just marked
  (dead-bit check, instance counting, unowned-ownee detection).
* ``on_repeat_encounter(obj, tracer, parent)`` — the object's mark bit was
  already set, i.e. a second incoming reference (unshared-bit check).

With ``engine=None`` and ``track_paths=False`` the tracer degenerates to the
plain mark loop of an unmodified collector — that is the paper's *Base*
configuration, against which the *Infrastructure* overhead is measured.

The drain is specialized into fused worklist loops — ``plain`` (Base),
``paths`` (Infrastructure without an engine), and ``paths+engine`` — so
the per-edge work never pays for branches it cannot take: children are
resolved through the heap's address table directly (no ``ObjectHeap.get``
triple check; the collector owns the heap during the pause), the
``reference_slots`` generator is inlined, and the hot counters accumulate
in locals and flush once per drain.  When the engine declares
``INLINE_HEADER_CHECKS`` (the assertion engine does), its per-object
duties are inlined too and the ``*_slow`` hooks run only when a header
bit shows actual assertion work; other engines get every encounter via
the full hooks.  The original method-per-edge implementation survives as
``specialized=False`` — it still serves the engine-without-paths
combination and is the "before" leg of the trace microbenchmark
(``python -m repro bench``).
"""

from __future__ import annotations

import gc as _host_gc
from typing import Iterable, Optional

from repro.errors import InvalidAddressError
from repro.heap import header as hdr
from repro.heap.heap import ObjectHeap
from repro.heap.layout import ADDRESS_TAG_BIT, NULL
from repro.heap.object_model import HeapObject
from repro.gc.stats import GcStats


class Tracer:
    """One tracing episode (reused across the collection's mark phase)."""

    __slots__ = (
        "heap",
        "stats",
        "engine",
        "track_paths",
        "specialized",
        "snapshot",
        "_stack",
        "_root_descs",
        "_table",
    )

    def __init__(
        self,
        heap: ObjectHeap,
        stats: GcStats,
        engine=None,
        track_paths: bool = True,
        specialized: bool = True,
        snapshot=None,
    ):
        self.heap = heap
        self.stats = stats
        self.engine = engine
        self.track_paths = track_paths
        self.specialized = specialized
        #: Optional :class:`repro.snapshot.capture.SnapshotSink`.  When set,
        #: the drain switches to the snapshot-recording variant; ``None``
        #: costs exactly one attribute test per drain.
        self.snapshot = snapshot
        self._stack: list[int] = []
        self._root_descs: dict[int, str] = {}
        self._table = heap.address_table()

    # -- driving the trace -------------------------------------------------------

    def trace(self, roots: Iterable[tuple[str, int]]) -> int:
        """Mark everything reachable from ``roots``; returns objects marked."""
        before = self.stats.objects_traced
        self.scan_roots(roots)
        self.drain()
        return self.stats.objects_traced - before

    def scan_roots(self, roots: Iterable[tuple[str, int]]) -> None:
        """Seed the worklist from the root set (the first half of
        :meth:`trace`, split out so the span tracer can time the root scan
        and the drain as separate phases without touching either loop)."""
        sink = self.snapshot
        for description, address in roots:
            if address == NULL:
                continue
            if sink is not None:
                sink.roots.append((description, address))
            # Roots come from the mutator (statics, frames, handles), so they
            # go through the checked dereference path.
            self._reach(self.heap.get(address), parent=None, via_root=description)

    def drain(self) -> None:
        """Process the worklist to empty."""
        if self.snapshot is not None:
            self._drain_snapshot()
            return
        if not self.specialized:
            if self.track_paths:
                self._drain_with_paths()
            else:
                self._drain_generic_plain()
            return
        if self.engine is None:
            if self.track_paths:
                self._drain_paths()
            else:
                self._drain_plain()
        elif self.track_paths:
            if getattr(self.engine, "INLINE_HEADER_CHECKS", False):
                self._drain_paths_engine()
            else:
                self._drain_paths_engine_hooks()
        else:
            # Engine without path tracking: an unusual ablation config;
            # the generic loop handles it without a fourth specialization.
            self._drain_generic_plain()

    # -- specialized fused drains -------------------------------------------------
    #
    # Each loop below is the same algorithm with a different fixed feature
    # set; the loop bodies are intentionally duplicated so the per-edge path
    # carries no engine/paths conditionals and no method calls.

    def _drain_plain(self) -> None:
        """Base configuration: mark loop with nothing else in it."""
        stack = self._stack
        table = self._table
        push = stack.append
        mark_bit = hdr.MARK_BIT
        objects = edges = 0
        try:
            while stack:
                obj = table[stack.pop()]
                cls = obj.cls
                if cls.is_array:
                    if not cls.element_kind.is_reference:
                        continue
                    children = obj.slots
                else:
                    ref_slots = cls.ref_slots
                    if not ref_slots:
                        continue
                    slots = obj.slots
                    children = [slots[i] for i in ref_slots]
                for child in children:
                    if child == NULL:
                        continue
                    edges += 1
                    cobj = table[child]
                    status = cobj.status
                    if status & mark_bit:
                        continue
                    cobj.status = status | mark_bit
                    objects += 1
                    push(child)
        except KeyError as exc:
            raise InvalidAddressError(f"no live object at {exc.args[0]:#x}") from None
        finally:
            self.stats.objects_traced += objects
            self.stats.edges_traced += edges

    def _drain_paths(self) -> None:
        """Infrastructure configuration: low-bit path tagging, no engine."""
        stack = self._stack
        table = self._table
        push = stack.append
        mark_bit = hdr.MARK_BIT
        tag_bit = ADDRESS_TAG_BIT
        objects = edges = tagged = 0
        try:
            while stack:
                entry = stack.pop()
                if entry & tag_bit:
                    # Low bit set: all objects reachable from it are done.
                    continue
                push(entry | tag_bit)
                tagged += 1
                obj = table[entry]
                cls = obj.cls
                if cls.is_array:
                    if not cls.element_kind.is_reference:
                        continue
                    children = obj.slots
                else:
                    ref_slots = cls.ref_slots
                    if not ref_slots:
                        continue
                    slots = obj.slots
                    children = [slots[i] for i in ref_slots]
                for child in children:
                    if child == NULL:
                        continue
                    edges += 1
                    cobj = table[child]
                    status = cobj.status
                    if status & mark_bit:
                        continue
                    cobj.status = status | mark_bit
                    objects += 1
                    push(child)
        except KeyError as exc:
            raise InvalidAddressError(f"no live object at {exc.args[0]:#x}") from None
        finally:
            stats = self.stats
            stats.objects_traced += objects
            stats.edges_traced += edges
            stats.path_entries_tagged += tagged

    def _drain_paths_engine(self) -> None:
        """Infrastructure/WithAssertions: tagging plus inlined header checks.

        The assertion engine's per-object duties (header-bit check counting,
        instance counting) live directly in the loop; the engine is called
        only when a header bit shows actual assertion work — ``DEAD_BIT`` or
        ``OWNEE_BIT`` on a first encounter, ``UNSHARED_BIT`` on a repeat.
        With no assertions registered this is the plain paths loop plus two
        counter increments per object, which is what makes the measured
        Infrastructure GC-time overhead track the paper's "piggyback on the
        collector's existing work" claim.
        """
        stack = self._stack
        table = self._table
        push = stack.append
        mark_bit = hdr.MARK_BIT
        tag_bit = ADDRESS_TAG_BIT
        first_slow_bits = hdr.DEAD_BIT | hdr.OWNEE_BIT
        unshared_bit = hdr.UNSHARED_BIT
        engine = self.engine
        slow_first = engine.on_first_encounter_slow
        slow_repeat = engine.on_repeat_encounter_slow
        objects = edges = tagged = header_checks = instance_incrs = 0
        try:
            while stack:
                entry = stack.pop()
                if entry & tag_bit:
                    continue
                push(entry | tag_bit)
                tagged += 1
                obj = table[entry]
                cls = obj.cls
                if cls.is_array:
                    if not cls.element_kind.is_reference:
                        continue
                    children = obj.slots
                else:
                    ref_slots = cls.ref_slots
                    if not ref_slots:
                        continue
                    slots = obj.slots
                    children = [slots[i] for i in ref_slots]
                for child in children:
                    if child == NULL:
                        continue
                    edges += 1
                    cobj = table[child]
                    status = cobj.status
                    if status & mark_bit:
                        header_checks += 1
                        if status & unshared_bit:
                            slow_repeat(cobj, self, obj)
                        continue
                    cobj.status = status | mark_bit
                    objects += 1
                    header_checks += 1
                    # Hooks may reconstruct the current path, so counters are
                    # flushed lazily but the worklist is always consistent
                    # (parent tagged and on-stack) at this point.
                    if status & first_slow_bits:
                        slow_first(cobj, self, obj)
                    ccls = cobj.cls
                    if ccls.instance_limit is not None:
                        ccls.instance_count += 1
                        instance_incrs += 1
                    push(child)
        except KeyError as exc:
            raise InvalidAddressError(f"no live object at {exc.args[0]:#x}") from None
        finally:
            stats = self.stats
            stats.objects_traced += objects
            stats.edges_traced += edges
            stats.path_entries_tagged += tagged
            stats.header_bit_checks += header_checks
            stats.instance_count_increments += instance_incrs

    def _drain_paths_engine_hooks(self) -> None:
        """Tagging plus the full encounter hooks, for engines that do not
        declare ``INLINE_HEADER_CHECKS`` (custom probes and instrumented
        engines get every encounter, not just the assertion-relevant ones)."""
        stack = self._stack
        table = self._table
        push = stack.append
        mark_bit = hdr.MARK_BIT
        tag_bit = ADDRESS_TAG_BIT
        engine = self.engine
        on_first = engine.on_first_encounter
        on_repeat = engine.on_repeat_encounter
        objects = edges = tagged = 0
        try:
            while stack:
                entry = stack.pop()
                if entry & tag_bit:
                    continue
                push(entry | tag_bit)
                tagged += 1
                obj = table[entry]
                cls = obj.cls
                if cls.is_array:
                    if not cls.element_kind.is_reference:
                        continue
                    children = obj.slots
                else:
                    ref_slots = cls.ref_slots
                    if not ref_slots:
                        continue
                    slots = obj.slots
                    children = [slots[i] for i in ref_slots]
                for child in children:
                    if child == NULL:
                        continue
                    edges += 1
                    cobj = table[child]
                    status = cobj.status
                    if status & mark_bit:
                        on_repeat(cobj, self, obj)
                        continue
                    cobj.status = status | mark_bit
                    objects += 1
                    on_first(cobj, self, obj)
                    push(child)
        except KeyError as exc:
            raise InvalidAddressError(f"no live object at {exc.args[0]:#x}") from None
        finally:
            stats = self.stats
            stats.objects_traced += objects
            stats.edges_traced += edges
            stats.path_entries_tagged += tagged

    # -- snapshot-recording drain ---------------------------------------------------

    def _drain_snapshot(self) -> None:
        """Snapshot capture: the mark loop also appends one ``(address,
        obj, alloc_seq, children)`` row per live object to the attached
        sink.

        Two variants, chosen once per drain: the paths-no-engine
        configuration (what ``every_n_gcs`` captures on an
        assertions-off VM run as — the ``abl-snapshot`` regime) gets a
        fused loop whose per-edge body is byte-for-byte
        :meth:`_drain_paths`, so capture pays only the row append; every
        other configuration goes through the generic loop with the mode
        flags hoisted into locals.  Both keep exact counter parity with
        whichever normal drain the collection would otherwise have used
        (``path_entries_tagged`` only under path tracking,
        ``header_bit_checks``/``instance_count_increments`` only in
        inline-engine mode).  The row must be recorded *before* the
        leaf-object ``continue``s, and array children are copied —
        ``obj.slots`` is the mutator's live buffer, not ours to keep.
        """
        # The row buffer allocates tens of thousands of small tuples in one
        # burst, which trips the host interpreter's cyclic GC *inside the
        # measured pause* — and its young-generation scan of the simulator's
        # own object graph dwarfs the row appends themselves.  Defer it to
        # mutator time, like the serialization it feeds.
        host_gc_was_enabled = _host_gc.isenabled()
        if host_gc_was_enabled:
            _host_gc.disable()
        try:
            if self.engine is None and self.track_paths:
                if self.snapshot.moving:
                    self._drain_snapshot_paths()
                else:
                    self._drain_snapshot_paths_addr()
            else:
                self._drain_snapshot_generic()
        finally:
            if host_gc_was_enabled:
                _host_gc.enable()

    def _drain_snapshot_paths_addr(self) -> None:
        """Snapshot capture, Infrastructure configuration, non-moving
        collector: :meth:`_drain_paths` plus one bare-address append per
        live object (the sink re-reads the heap at flush time)."""
        sink = self.snapshot
        rows = sink.rows
        record = rows.append
        stack = self._stack
        table = self._table
        push = stack.append
        mark_bit = hdr.MARK_BIT
        tag_bit = ADDRESS_TAG_BIT
        objects = edges = tagged = 0
        try:
            while stack:
                entry = stack.pop()
                if entry & tag_bit:
                    continue
                push(entry | tag_bit)
                tagged += 1
                record(entry)
                obj = table[entry]
                cls = obj.cls
                if cls.is_array:
                    if not cls.element_kind.is_reference:
                        continue
                    children = obj.slots
                else:
                    ref_slots = cls.ref_slots
                    if not ref_slots:
                        continue
                    slots = obj.slots
                    children = [slots[i] for i in ref_slots]
                for child in children:
                    if child == NULL:
                        continue
                    edges += 1
                    cobj = table[child]
                    status = cobj.status
                    if status & mark_bit:
                        continue
                    cobj.status = status | mark_bit
                    objects += 1
                    push(child)
        except KeyError as exc:
            raise InvalidAddressError(f"no live object at {exc.args[0]:#x}") from None
        finally:
            stats = self.stats
            stats.objects_traced += objects
            stats.edges_traced += edges
            stats.path_entries_tagged += tagged

    def _drain_snapshot_paths(self) -> None:
        """Snapshot capture in the Infrastructure configuration:
        :meth:`_drain_paths` plus one row append per live object."""
        sink = self.snapshot
        rows = sink.rows
        record = rows.append
        stack = self._stack
        table = self._table
        push = stack.append
        mark_bit = hdr.MARK_BIT
        tag_bit = ADDRESS_TAG_BIT
        objects = edges = tagged = 0
        try:
            while stack:
                entry = stack.pop()
                if entry & tag_bit:
                    continue
                push(entry | tag_bit)
                tagged += 1
                obj = table[entry]
                cls = obj.cls
                if cls.is_array:
                    if not cls.element_kind.is_reference:
                        record((entry, obj, obj.alloc_seq, None))
                        continue
                    children = obj.slots[:]
                else:
                    ref_slots = cls.ref_slots
                    if not ref_slots:
                        record((entry, obj, obj.alloc_seq, None))
                        continue
                    slots = obj.slots
                    children = [slots[i] for i in ref_slots]
                record((entry, obj, obj.alloc_seq, children))
                for child in children:
                    if child == NULL:
                        continue
                    edges += 1
                    cobj = table[child]
                    status = cobj.status
                    if status & mark_bit:
                        continue
                    cobj.status = status | mark_bit
                    objects += 1
                    push(child)
        except KeyError as exc:
            raise InvalidAddressError(f"no live object at {exc.args[0]:#x}") from None
        finally:
            stats = self.stats
            stats.objects_traced += objects
            stats.edges_traced += edges
            stats.path_entries_tagged += tagged

    def _drain_snapshot_generic(self) -> None:
        """Snapshot capture for every other tracer configuration."""
        sink = self.snapshot
        rows = sink.rows
        record = rows.append
        stack = self._stack
        table = self._table
        push = stack.append
        mark_bit = hdr.MARK_BIT
        tag_bit = ADDRESS_TAG_BIT
        first_slow_bits = hdr.DEAD_BIT | hdr.OWNEE_BIT
        unshared_bit = hdr.UNSHARED_BIT
        track = self.track_paths
        freeze = sink.moving
        engine = self.engine
        inline = engine is not None and getattr(engine, "INLINE_HEADER_CHECKS", False)
        if inline:
            slow_first = engine.on_first_encounter_slow
            slow_repeat = engine.on_repeat_encounter_slow
        elif engine is not None:
            on_first = engine.on_first_encounter
            on_repeat = engine.on_repeat_encounter
        objects = edges = tagged = header_checks = instance_incrs = 0
        try:
            while stack:
                entry = stack.pop()
                if track:
                    if entry & tag_bit:
                        continue
                    push(entry | tag_bit)
                    tagged += 1
                if not freeze:
                    record(entry)
                obj = table[entry]
                cls = obj.cls
                if cls.is_array:
                    if not cls.element_kind.is_reference:
                        if freeze:
                            record((entry, obj, obj.alloc_seq, None))
                        continue
                    children = obj.slots[:] if freeze else obj.slots
                else:
                    ref_slots = cls.ref_slots
                    if not ref_slots:
                        if freeze:
                            record((entry, obj, obj.alloc_seq, None))
                        continue
                    slots = obj.slots
                    children = [slots[i] for i in ref_slots]
                if freeze:
                    record((entry, obj, obj.alloc_seq, children))
                for child in children:
                    if child == NULL:
                        continue
                    edges += 1
                    cobj = table[child]
                    status = cobj.status
                    if status & mark_bit:
                        if inline:
                            header_checks += 1
                            if status & unshared_bit:
                                slow_repeat(cobj, self, obj)
                        elif engine is not None:
                            on_repeat(cobj, self, obj)
                        continue
                    cobj.status = status | mark_bit
                    objects += 1
                    if inline:
                        header_checks += 1
                        if status & first_slow_bits:
                            slow_first(cobj, self, obj)
                        ccls = cobj.cls
                        if ccls.instance_limit is not None:
                            ccls.instance_count += 1
                            instance_incrs += 1
                    elif engine is not None:
                        on_first(cobj, self, obj)
                    push(child)
        except KeyError as exc:
            raise InvalidAddressError(f"no live object at {exc.args[0]:#x}") from None
        finally:
            stats = self.stats
            stats.objects_traced += objects
            stats.edges_traced += edges
            if track:
                stats.path_entries_tagged += tagged
            if inline:
                stats.header_bit_checks += header_checks
                stats.instance_count_increments += instance_incrs

    # -- generic (pre-specialization) drain ----------------------------------------

    def _drain_with_paths(self) -> None:
        stack = self._stack
        heap = self.heap
        stats = self.stats
        while stack:
            entry = stack.pop()
            if entry & ADDRESS_TAG_BIT:
                # Low bit set: all objects reachable from it are done.
                continue
            stack.append(entry | ADDRESS_TAG_BIT)
            stats.path_entries_tagged += 1
            self._scan(heap.get(entry))

    def _drain_generic_plain(self) -> None:
        stack = self._stack
        heap = self.heap
        while stack:
            self._scan(heap.get(stack.pop()))

    def _scan(self, obj: HeapObject) -> None:
        """Visit every outgoing reference of ``obj``."""
        heap = self.heap
        stats = self.stats
        for child in obj.reference_slots():
            if child == NULL:
                continue
            stats.edges_traced += 1
            self._reach(heap.get(child), parent=obj)

    def _reach(
        self,
        obj: HeapObject,
        parent: Optional[HeapObject],
        via_root: Optional[str] = None,
    ) -> None:
        engine = self.engine
        if obj.status & hdr.MARK_BIT:
            if engine is not None:
                engine.on_repeat_encounter(obj, self, parent)
            return
        obj.status |= hdr.MARK_BIT
        self.stats.objects_traced += 1
        if via_root is not None and self.track_paths:
            self._root_descs.setdefault(obj.address, via_root)
        if engine is not None:
            engine.on_first_encounter(obj, self, parent)
        self._stack.append(obj.address)

    # -- path reconstruction -------------------------------------------------------

    def current_path_addresses(self, tip: Optional[int] = None) -> list[int]:
        """Addresses of the current root-to-object path, root first.

        The cheap variant of :meth:`current_path`: one worklist scan, no
        heap lookups and no ``HeapObject`` list.  ``tip`` (an address) is
        appended when it is not already the last tagged entry.
        """
        if not self.track_paths:
            return [tip] if tip is not None else []
        tag_bit = ADDRESS_TAG_BIT
        chain = [entry ^ tag_bit for entry in self._stack if entry & tag_bit]
        if tip is not None and (not chain or chain[-1] != tip):
            chain.append(tip)
        return chain

    def path_depth(self) -> int:
        """Length of the current path (tagged worklist entries only)."""
        tag_bit = ADDRESS_TAG_BIT
        return sum(1 for entry in self._stack if entry & tag_bit)

    def current_path(self, tip: Optional[HeapObject] = None):
        """Reconstruct the root-to-current-object path from the worklist.

        Returns ``(root_description, [HeapObject, ...])`` where the list runs
        root-first and ends at ``tip`` (if given).  Returns ``(None, [tip])``
        when path tracking is disabled.
        """
        if not self.track_paths:
            return None, ([tip] if tip is not None else [])
        heap = self.heap
        addresses = self.current_path_addresses(tip.address if tip is not None else None)
        chain = [heap.get(address) for address in addresses]
        if tip is not None and chain and chain[-1].address == tip.address:
            chain[-1] = tip
        root_desc = self._root_descs.get(chain[0].address) if chain else None
        return root_desc, chain

    def root_description(self, obj: HeapObject) -> Optional[str]:
        return self._root_descs.get(obj.address)
