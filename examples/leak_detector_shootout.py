#!/usr/bin/env python
"""Leak-detector shootout: GC assertions vs the heuristics and probes.

The paper claims GC assertions hit a sweet spot the related work misses:

* more accurate than heuristics (type growth, staleness) — no false
  positives, instance-level paths instead of type names;
* far cheaper than QVM-style immediate heap probes — batched checking in
  the regularly scheduled collection instead of one GC per probe.

This example runs the same leaky program under all four detectors.  Run:

    python examples/leak_detector_shootout.py
"""

from repro import AssertionKind, FieldKind, VirtualMachine
from repro.baselines import StalenessDetector, TypeGrowthProfiler
from repro.core.probes import HeapProbes
from repro.workloads.containers import Vector


def build_program(vm):
    vm.define_class("Record", [("id", FieldKind.INT)])
    vm.define_class("Config", [("setting", FieldKind.INT)])
    registry = Vector.new(vm)
    vm.statics.set_ref("registry", registry.handle.address)
    sink = Vector.new(vm)
    vm.statics.set_ref("archiveCache", sink.handle.address)  # the leak
    with vm.scope():
        vm.statics.set_ref("config", vm.new("Config", setting=42).address)
    return registry, sink


def churn(vm, registry, sink, rounds, on_remove=None):
    for round_index in range(rounds):
        with vm.scope():
            for i in range(8):
                registry.append(vm.new("Record", id=round_index * 8 + i))
        for _ in range(8):
            record = registry.pop()
            sink.append(record)  # BUG: "archived" records are never dropped
            if on_remove:
                on_remove(record)
        vm.gc(reason=f"round {round_index}")


def main():
    print("The program: records pass through a registry; on removal they are")
    print("'archived' into a cache that is never cleared. A Config object")
    print("sits idle but alive the whole time.\n")

    # ------------------------------------------------------------- assertions
    vm = VirtualMachine(heap_bytes=4 << 20)
    registry, sink = build_program(vm)
    churn(vm, registry, sink, rounds=5,
          on_remove=lambda r: vm.assertions.assert_dead(r, site="registry.remove"))
    dead = vm.engine.log.of_kind(AssertionKind.DEAD)
    print("1) GC ASSERTIONS (this paper)")
    print(f"   violations: {len(dead)}; first detected at GC "
          f"{dead[0].gc_number}; false positives: 0 by construction")
    print("   diagnostic:")
    for row in dead[0].render().splitlines():
        print("     " + row)

    # ------------------------------------------------------------ type growth
    vm = VirtualMachine(heap_bytes=4 << 20, assertions=False)
    registry, sink = build_program(vm)
    growth = TypeGrowthProfiler(vm)
    churn(vm, registry, sink, rounds=5)
    print("\n2) TYPE-GROWTH HEURISTIC (Cork-style)")
    for report in growth.report():
        print(f"   suspicious: {report.render()}")
    print("   -> a type name and a trend; which instances, held by what? unknown.")

    # -------------------------------------------------------------- staleness
    vm = VirtualMachine(heap_bytes=4 << 20, assertions=False)
    registry, sink = build_program(vm)
    staleness = StalenessDetector(vm, stale_after=3)
    churn(vm, registry, sink, rounds=6)
    print("\n3) STALENESS HEURISTIC (SWAT/Bell-style)")
    types = staleness.candidate_types()
    print(f"   stale candidates by type: {types}")
    if "Config" in types:
        print("   -> includes the live-but-idle Config: a FALSE POSITIVE.")

    # ------------------------------------------------------------- heap probes
    vm = VirtualMachine(heap_bytes=4 << 20)
    registry, sink = build_program(vm)
    probes = HeapProbes(vm)
    leaked = []
    churn(vm, registry, sink, rounds=5,
          on_remove=lambda r: leaked.append(probes.probe_dead(r)))
    print("\n4) QVM-STYLE HEAP PROBES (immediate checking)")
    print(f"   probes executed: {probes.stats.executed}, each triggered a GC "
          f"-> {probes.stats.gcs_triggered} probe GCs "
          f"(vs 5 scheduled GCs for batched assertions)")
    print(f"   every probe answered 'dead? {leaked[0]}' at the exact call site,"
          f" but at ~{probes.stats.gcs_triggered // 5}x the collection count.")


if __name__ == "__main__":
    main()
